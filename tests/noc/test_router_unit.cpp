#include <gtest/gtest.h>

#include <map>

#include "noc/router.hpp"

namespace dr
{
namespace
{

/**
 * A mock environment exposing one router in isolation: port 0 ejects to
 * node 0, ports 1..3 are links whose deliveries/credits we record.
 */
class MockEnv : public RouterEnv
{
  public:
    struct Delivery
    {
        int port;
        Flit flit;
        Cycle when;
    };

    int
    routeOutput(int, const Flit &flit) const override
    {
        return flit.destPort;  // tests encode the output port directly
    }

    std::uint8_t
    vcMaskForOutput(int, int, const Flit &) const override
    {
        return 0xff;
    }

    void
    deliverToRouter(int, int port, const Flit &flit, Cycle when) override
    {
        linkDeliveries.push_back({port, flit, when});
    }

    void
    deliverToNode(NodeId, const Flit &flit, Cycle when) override
    {
        nodeDeliveries.push_back({0, flit, when});
    }

    int nodeEjectFree(NodeId) const override { return ejFree; }
    void nodeEjectReserve(NodeId) override { --ejFree; }

    void
    creditToFeeder(int, int inputPort, int vc, Cycle when) override
    {
        creditReturns.push_back({inputPort, vc, when});
    }

    struct CreditReturn
    {
        int port;
        int vc;
        Cycle when;
    };

    std::vector<Delivery> linkDeliveries;
    std::vector<Delivery> nodeDeliveries;
    std::vector<CreditReturn> creditReturns;
    int ejFree = 100;
};

class RouterUnit : public ::testing::Test
{
  protected:
    RouterUnit()
    {
        // 4 ports: 0 = node, 1..3 = links. 2 VCs, 4-flit buffers,
        // 4-stage pipeline.
        const std::vector<std::uint8_t> isLink = {0, 1, 1, 1};
        const std::vector<NodeId> nodes = {0, invalidNode, invalidNode,
                                           invalidNode};
        router = std::make_unique<Router>(7, 4, 2, 4, 4, env, isLink,
                                          nodes);
    }

    Flit
    makeFlit(PacketId pkt, int seq, int packetLen, int outPort,
             TrafficClass cls = TrafficClass::Gpu, int vc = 0)
    {
        Flit f;
        f.pkt = pkt;
        f.seq = static_cast<std::uint16_t>(seq);
        f.head = seq == 0;
        f.tail = seq == packetLen - 1;
        f.vc = static_cast<std::uint8_t>(vc);
        f.destPort = static_cast<std::int16_t>(outPort);
        f.destRouter = 99;  // not this router; routeOutput uses destPort
        f.cls = cls;
        return f;
    }

    MockEnv env;
    std::unique_ptr<Router> router;
    std::size_t creditsReturned = 0;
};

TEST_F(RouterUnit, ForwardsSingleFlitAfterPipeline)
{
    router->acceptFlit(1, makeFlit(1, 0, 1, /*outPort=*/2), 0);
    router->tick(0);
    ASSERT_EQ(env.linkDeliveries.size(), 1u);
    EXPECT_EQ(env.linkDeliveries[0].port, 2);
    // 4-stage router: SA at cycle 0 delivers at 0 + (4-1) + 1 = 4.
    EXPECT_EQ(env.linkDeliveries[0].when, 4u);
}

TEST_F(RouterUnit, ReturnsCreditToFeeder)
{
    router->acceptFlit(1, makeFlit(1, 0, 1, 2), 0);
    router->tick(0);
    ASSERT_EQ(env.creditReturns.size(), 1u);
    EXPECT_EQ(env.creditReturns[0].port, 1);
    EXPECT_EQ(env.creditReturns[0].vc, 0);
    EXPECT_EQ(env.creditReturns[0].when, 1u);
}

TEST_F(RouterUnit, OneFlitPerOutputPerCycle)
{
    // Two packets from different inputs to the same output: one flit
    // per cycle crosses.
    router->acceptFlit(1, makeFlit(1, 0, 1, 2), 0);
    router->acceptFlit(3, makeFlit(2, 0, 1, 2), 0);
    router->tick(0);
    EXPECT_EQ(env.linkDeliveries.size(), 1u);
    router->tick(1);
    EXPECT_EQ(env.linkDeliveries.size(), 2u);
}

TEST_F(RouterUnit, DistinctOutputsCrossInParallel)
{
    router->acceptFlit(1, makeFlit(1, 0, 1, 2), 0);
    router->acceptFlit(3, makeFlit(2, 0, 1, 1), 0);
    router->tick(0);
    EXPECT_EQ(env.linkDeliveries.size(), 2u);
}

TEST_F(RouterUnit, CpuFlitBeatsGpuFlit)
{
    // GPU on VC0 of port 1, CPU on VC0 of port 3, both to output 2.
    router->acceptFlit(1, makeFlit(1, 0, 1, 2, TrafficClass::Gpu), 0);
    router->acceptFlit(3, makeFlit(2, 0, 1, 2, TrafficClass::Cpu), 0);
    router->tick(0);
    ASSERT_EQ(env.linkDeliveries.size(), 1u);
    EXPECT_EQ(env.linkDeliveries[0].flit.cls, TrafficClass::Cpu);
}

TEST_F(RouterUnit, WormholeKeepsPacketOnOneOutputVc)
{
    for (int seq = 0; seq < 3; ++seq)
        router->acceptFlit(1, makeFlit(1, seq, 3, 2), 0);
    for (Cycle c = 0; c < 5; ++c)
        router->tick(c);
    ASSERT_EQ(env.linkDeliveries.size(), 3u);
    const int vc = env.linkDeliveries[0].flit.vc;
    for (const auto &d : env.linkDeliveries) {
        EXPECT_EQ(d.flit.vc, vc);
        EXPECT_EQ(d.port, 2);
    }
    // In order.
    EXPECT_TRUE(env.linkDeliveries[0].flit.head);
    EXPECT_TRUE(env.linkDeliveries[2].flit.tail);
}

TEST_F(RouterUnit, CreditsLimitInFlightFlits)
{
    // Downstream buffer depth is 4; with no credits returned, at most
    // 4 flits of a long packet may leave. Feed the second half only
    // after the input buffer drains — a real upstream holds just 4
    // credits, and DR_CHECKED builds assert that law.
    for (int seq = 0; seq < 4; ++seq)
        router->acceptFlit(1, makeFlit(1, seq, 8, 2), 0);
    for (Cycle c = 0; c < 10; ++c)
        router->tick(c);
    for (int seq = 4; seq < 8; ++seq)
        router->acceptFlit(1, makeFlit(1, seq, 8, 2), 10);
    for (Cycle c = 10; c < 20; ++c)
        router->tick(c);
    EXPECT_EQ(env.linkDeliveries.size(), 4u);
    // Returning credits releases the rest.
    for (int i = 0; i < 4; ++i)
        router->acceptCredit(2, 0, 21);
    for (Cycle c = 21; c < 40; ++c)
        router->tick(c);
    EXPECT_EQ(env.linkDeliveries.size(), 8u);
}

TEST_F(RouterUnit, EjectionRespectsNodeBufferSpace)
{
    env.ejFree = 2;
    for (int seq = 0; seq < 4; ++seq)
        router->acceptFlit(1, makeFlit(1, seq, 4, /*outPort=*/0), 0);
    for (Cycle c = 0; c < 10; ++c)
        router->tick(c);
    EXPECT_EQ(env.nodeDeliveries.size(), 2u);
    EXPECT_EQ(env.ejFree, 0);
    // Growing ejection space must wake the stalled router, as
    // Network::popMessage does (the quiescent fast-path contract).
    env.ejFree = 10;
    router->wakeEjectSpace();
    for (Cycle c = 10; c < 20; ++c)
        router->tick(c);
    EXPECT_EQ(env.nodeDeliveries.size(), 4u);
}

TEST_F(RouterUnit, VcOwnershipBlocksSecondPacketUntilTail)
{
    // Long packet A occupies out VC0 of port 2; packet B wants the same
    // output. With 2 VCs, B takes VC1 and interleaves; a third packet C
    // must wait for a tail to free a VC.
    for (int seq = 0; seq < 4; ++seq)
        router->acceptFlit(1, makeFlit(1, seq, 4, 2, TrafficClass::Gpu, 0), 0);
    for (int seq = 0; seq < 4; ++seq)
        router->acceptFlit(3, makeFlit(2, seq, 4, 2, TrafficClass::Gpu, 0), 0);
    router->acceptFlit(1, makeFlit(3, 0, 1, 2, TrafficClass::Gpu, 1), 0);
    // Give ample credits back as flits drain.
    for (Cycle c = 0; c < 30; ++c) {
        router->tick(c);
        while (!env.linkDeliveries.empty() &&
               env.linkDeliveries.size() > creditsReturned) {
            router->acceptCredit(
                2, env.linkDeliveries[creditsReturned].flit.vc, c + 1);
            ++creditsReturned;
        }
    }
    EXPECT_EQ(env.linkDeliveries.size(), 9u);
    // Packet 3's flit is delivered last or near-last: its VC was owned.
    bool sawPkt3 = false;
    for (const auto &d : env.linkDeliveries)
        sawPkt3 |= d.flit.pkt == 3;
    EXPECT_TRUE(sawPkt3);
}

TEST_F(RouterUnit, IdleFastPathDeliversNothing)
{
    for (Cycle c = 0; c < 100; ++c)
        router->tick(c);
    EXPECT_TRUE(env.linkDeliveries.empty());
    EXPECT_TRUE(env.nodeDeliveries.empty());
    EXPECT_EQ(router->bufferedFlits(), 0);
}

TEST_F(RouterUnit, StatsCountTraversalsAndBufferWrites)
{
    router->acceptFlit(1, makeFlit(1, 0, 1, 2), 0);
    router->tick(0);
    EXPECT_EQ(router->stats().bufferWrites, 1u);
    EXPECT_EQ(router->stats().switchTraversals, 1u);
    ASSERT_FALSE(router->stats().portFlitsSent.empty());
    EXPECT_EQ(router->stats().portFlitsSent[2], 1u);
    router->resetStats();
    EXPECT_EQ(router->stats().switchTraversals, 0u);
}

TEST_F(RouterUnit, FreeCreditsReflectConsumption)
{
    EXPECT_EQ(router->freeCredits(2), 8);  // 2 VCs x 4 flits
    router->acceptFlit(1, makeFlit(1, 0, 1, 2), 0);
    router->tick(0);
    EXPECT_EQ(router->freeCredits(2), 7);
    router->acceptCredit(2, 0, 1);
    router->tick(1);
    EXPECT_EQ(router->freeCredits(2), 8);
}

} // namespace
} // namespace dr

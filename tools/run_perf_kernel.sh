#!/bin/sh
# Run the NoC kernel-performance benchmark and emit BENCH_noc_kernel.json.
#
# Usage:
#   tools/run_perf_kernel.sh [BUILD_DIR] [OUTPUT_JSON] [BASELINE_JSON]
#
#   BUILD_DIR      build tree containing bench/perf_kernel (default: build)
#   OUTPUT_JSON    where to write the result (default: BENCH_noc_kernel.json)
#   BASELINE_JSON  optional committed baseline; when given, exit non-zero
#                  if uniform cycles/sec regressed by more than
#                  DR_PERF_REGRESSION_PCT percent (default 20).
#
# DR_BENCH_CYCLES scales the measured horizon as for every bench binary.
set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_noc_kernel.json}"
BASELINE="${3:-}"
BIN="$BUILD_DIR/bench/perf_kernel"

if [ ! -x "$BIN" ]; then
    echo "run_perf_kernel: $BIN not found (build the 'perf_kernel' target)" >&2
    exit 2
fi

"$BIN" > "$OUTPUT"
echo "run_perf_kernel: wrote $OUTPUT"

if [ -z "$BASELINE" ]; then
    exit 0
fi
if [ ! -f "$BASELINE" ]; then
    echo "run_perf_kernel: baseline $BASELINE not found" >&2
    exit 2
fi

python3 - "$OUTPUT" "$BASELINE" "${DR_PERF_REGRESSION_PCT:-20}" <<'EOF'
import json
import sys

current_path, baseline_path, threshold_pct = sys.argv[1:4]
threshold = float(threshold_pct)

with open(current_path) as f:
    current = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

# The committed baseline stores an "after" section (see EXPERIMENTS.md);
# a raw perf_kernel emission stores "summary" only.
base_summary = baseline.get("after", baseline)["summary"]
cur = current["summary"]["uniform_cycles_per_sec"]
base = base_summary["uniform_cycles_per_sec"]

delta_pct = 100.0 * (cur - base) / base
print(f"run_perf_kernel: uniform cycles/sec {cur:.0f} vs baseline "
      f"{base:.0f} ({delta_pct:+.1f}%)")
if cur < base * (1.0 - threshold / 100.0):
    print(f"run_perf_kernel: REGRESSION beyond {threshold:.0f}% threshold",
          file=sys.stderr)
    sys.exit(1)
EOF

#!/bin/sh
# Run the NoC kernel-performance benchmark and emit BENCH_noc_kernel.json.
#
# Usage:
#   tools/run_perf_kernel.sh [BUILD_DIR] [OUTPUT_JSON] [BASELINE_JSON]
#
#   BUILD_DIR      build tree containing bench/perf_kernel (default: build)
#   OUTPUT_JSON    where to write the result (default: BENCH_noc_kernel.json)
#   BASELINE_JSON  optional committed baseline; when given, exit non-zero
#                  if any gated cycles/sec summary (uniform, hotspot and
#                  the vnet workloads) regressed by more than
#                  DR_PERF_REGRESSION_PCT percent (default 20).
#
# The emitted JSON is annotated with host provenance (core count, 1-min
# loadavg, DR_NOC_THREADS) so committed baselines stay comparable across
# machines. Writing a *baseline* (an output named like the committed
# BENCH_noc_kernel.json) is refused on a visibly loaded machine — 1-min
# loadavg above cores/2 — or on a host with fewer cores than the bench's
# widest thread-scaling column (4, or DR_NOC_THREADS if larger); set
# DR_BENCH_FORCE=1 to override.
#
# When BASELINE_JSON is given, the gate also checks end-to-end thread
# scaling on hosts with >= 4 cores: e2e_hetero threads4 must beat
# threads1 by DR_PERF_E2E_MIN_SPEEDUP (default 1.5x).
#
# DR_BENCH_CYCLES scales the measured horizon as for every bench binary.
set -eu

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_noc_kernel.json}"
BASELINE="${3:-}"
BIN="$BUILD_DIR/bench/perf_kernel"

if [ ! -x "$BIN" ]; then
    echo "run_perf_kernel: $BIN not found (build the 'perf_kernel' target)" >&2
    exit 2
fi

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
LOADAVG="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"

# The widest thread-scaling column the bench runs (uniform_r10_threads4
# and e2e_hetero_threads4). A baseline measured on a host with fewer
# cores than that time-slices the domain workers, so its threads>1
# columns record slowdown, not scaling.
THREADS_NEEDED=4
if [ -n "${DR_NOC_THREADS:-}" ] && [ "${DR_NOC_THREADS}" -gt "$THREADS_NEEDED" ] 2>/dev/null; then
    THREADS_NEEDED="$DR_NOC_THREADS"
fi

# A baseline measured while the machine was busy — or with fewer cores
# than the bench's widest thread column — undercuts every future
# comparison against it. Refuse unless explicitly forced.
case "$OUTPUT" in
*BENCH_noc_kernel.json)
    if [ "${DR_BENCH_FORCE:-0}" != "1" ] && [ "$CORES" -lt "$THREADS_NEEDED" ]; then
        echo "run_perf_kernel: refusing to write baseline $OUTPUT:" \
             "host has $CORES cores but the thread-scaling columns need" \
             "$THREADS_NEEDED; measure on a >=${THREADS_NEEDED}-core host" \
             "or set DR_BENCH_FORCE=1" >&2
        exit 3
    fi
    if [ "${DR_BENCH_FORCE:-0}" != "1" ] &&
       awk -v l="$LOADAVG" -v c="$CORES" 'BEGIN { exit !(l > c / 2) }'; then
        echo "run_perf_kernel: refusing to write baseline $OUTPUT:" \
             "1-min loadavg $LOADAVG exceeds half the $CORES host cores;" \
             "measure on an idle machine or set DR_BENCH_FORCE=1" >&2
        exit 3
    fi
    ;;
esac

"$BIN" > "$OUTPUT.tmp"

# Annotate with host provenance so the numbers can be judged later.
python3 - "$OUTPUT.tmp" "$OUTPUT" "$CORES" "$LOADAVG" <<'EOF'
import json
import os
import sys

tmp_path, out_path, cores, loadavg = sys.argv[1:5]
with open(tmp_path) as f:
    result = json.load(f)
result["host"] = {
    "cores": int(cores),
    "loadavg_1min": float(loadavg),
    "noc_threads_env": os.environ.get("DR_NOC_THREADS", ""),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
EOF
rm -f "$OUTPUT.tmp"
echo "run_perf_kernel: wrote $OUTPUT (host: $CORES cores, loadavg $LOADAVG)"

if [ -z "$BASELINE" ]; then
    exit 0
fi
if [ ! -f "$BASELINE" ]; then
    echo "run_perf_kernel: baseline $BASELINE not found" >&2
    exit 2
fi

python3 - "$OUTPUT" "$BASELINE" "${DR_PERF_REGRESSION_PCT:-20}" <<'EOF'
import json
import os
import sys

current_path, baseline_path, threshold_pct = sys.argv[1:4]
threshold = float(threshold_pct)

with open(current_path) as f:
    current = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

# The committed baseline stores an "after" section (see EXPERIMENTS.md);
# a raw perf_kernel emission stores "summary" only.
base_summary = baseline.get("after", baseline)["summary"]
cur_summary = current["summary"]

# Gate every throughput summary both sides know about — the legacy
# uniform/hotspot metrics and the vnet workloads alike. Thread-scaling
# columns are machine-dependent (core count), so they are reported in
# the JSON but not gated.
gated = [
    "uniform_cycles_per_sec",
    "hotspot_cycles_per_sec",
    "vnet_uniform_cycles_per_sec",
    "vnet_hotspot_cycles_per_sec",
    "chiplet_uniform_cycles_per_sec",
]
failed = False
for key in gated:
    if key not in base_summary or key not in cur_summary:
        print(f"run_perf_kernel: {key}: not in both summaries, skipped")
        continue
    cur = cur_summary[key]
    base = base_summary[key]
    delta_pct = 100.0 * (cur - base) / base
    print(f"run_perf_kernel: {key} {cur:.0f} vs baseline "
          f"{base:.0f} ({delta_pct:+.1f}%)")
    if cur < base * (1.0 - threshold / 100.0):
        print(f"run_perf_kernel: {key}: REGRESSION beyond "
              f"{threshold:.0f}% threshold", file=sys.stderr)
        failed = True

# End-to-end thread-scaling gate: on a host with enough cores for the
# widest thread column, the 4-thread whole-system run must beat the
# 1-thread run by DR_PERF_E2E_MIN_SPEEDUP (default 1.5x). Skipped on
# narrower hosts, where the workers time-slice and scaling is
# meaningless.
min_speedup = float(os.environ.get("DR_PERF_E2E_MIN_SPEEDUP", "1.5"))
host_cores = current.get("host", {}).get("cores", 0)
# The shared DC-L1 column pair exercises the staged slice-port path
# (DESIGN.md §14); it is gated by the same speedup floor because the
# per-core banking exists precisely so that organization scales.
for prefix in ("e2e_hetero", "e2e_hetero_sharedL1"):
    t1 = cur_summary.get(f"{prefix}_threads1_cycles_per_sec", 0.0)
    t4 = cur_summary.get(f"{prefix}_threads4_cycles_per_sec", 0.0)
    if t1 <= 0.0 or t4 <= 0.0:
        continue
    if host_cores >= 4:
        speedup = t4 / t1
        print(f"run_perf_kernel: {prefix} 4-thread speedup "
              f"{speedup:.2f}x (threads1 {t1:.0f}, threads4 {t4:.0f} "
              f"cycles/sec)")
        if speedup < min_speedup:
            print(f"run_perf_kernel: {prefix} scaling REGRESSION: "
                  f"{speedup:.2f}x < required {min_speedup:.2f}x",
                  file=sys.stderr)
            failed = True
    else:
        print(f"run_perf_kernel: {prefix} scaling gate skipped "
              f"(host has {host_cores} cores, need >= 4)")

if failed:
    sys.exit(1)
EOF

#!/usr/bin/env python3
"""Self-test for drphase.py (stdlib unittest; wired into ctest).

The heart of this test is the seeded-mutant matrix: each mutant copies
the *real* annotated sources into a temp root, applies one phase/
ownership violation as a textual patch, and asserts drphase reports the
expected rule. Together with tests/noc/test_phase_ownership.cpp (which
injects the runtime counterparts into a DR_CHECKED build) this pins the
checking from both sides: the static pass and the stamp machinery must
each catch their half of the matrix.
"""

import json
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import drphase  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories copied into each mutant's temp root. src/noc carries every
# class the patched rules touch; src/common carries ownership.hpp;
# src/gpu carries SmCore for the endpoint-phase mutants.
COPY_DIRS = ("src/noc", "src/common", "src/gpu")


def rules_in(findings):
    return sorted({f.rule for f in findings})


def make_tree(tmp):
    for rel in COPY_DIRS:
        shutil.copytree(os.path.join(REPO, rel), os.path.join(tmp, rel))


class StripCodeTest(unittest.TestCase):
    def test_line_comment_removed(self):
        self.assertEqual(drphase.strip_code(["int x; // w = 1"]),
                         ["int x; "])

    def test_string_literal_blanked(self):
        self.assertEqual(drphase.strip_code(['panic("x = ");']),
                         ['panic("");'])


class WriteScanTest(unittest.TestCase):
    def test_assignment(self):
        self.assertTrue(drphase.scan_writes("stats_.x = 1;", "stats_"))

    def test_pre_increment_on_field(self):
        self.assertTrue(drphase.scan_writes("++stats_.pkts;", "stats_"))

    def test_compound_assignment(self):
        self.assertTrue(drphase.scan_writes("now_ += 2;", "now_"))

    def test_comparison_is_not_a_write(self):
        self.assertFalse(drphase.scan_writes("if (now_ == 2)", "now_"))
        self.assertFalse(drphase.scan_writes("a = now_;", "now_"))

    def test_field_of_other_object_ignored(self):
        self.assertFalse(drphase.scan_writes("d.stats_ = 1;", "stats_"))

    def test_mutating_call(self):
        self.assertTrue(
            drphase.scan_mutating_call("free_.push_back(h);", "free_"))
        self.assertFalse(
            drphase.scan_mutating_call("free_.empty();", "free_"))


class ModelTest(unittest.TestCase):
    """The parser recovers the real tree's ownership model."""

    @classmethod
    def setUpClass(cls):
        cls.models = {}
        for fpath, rel in drphase.list_sources(REPO, ["src"]):
            with open(fpath, encoding="utf-8") as fh:
                code = drphase.strip_code(fh.read().splitlines())
            drphase.parse_classes(code, rel, cls.models)

    def test_network_members_classified(self):
        net = self.models["Network"]
        self.assertEqual(net.classification("stats_"), "serial")
        self.assertEqual(net.classification("nis_"), "domain")
        self.assertEqual(net.classification("stagedFlits_"), "spsc")
        self.assertIsNone(net.classification("barrier_"))  # type-exempt

    def test_class_level_annotation_covers_members(self):
        router = self.models["Router"]
        self.assertEqual(router.class_annotation, "domain")
        self.assertEqual(router.classification("occ_"), "domain")

    def test_method_phases(self):
        net = self.models["Network"]
        self.assertEqual(net.methods["niInject"], "compute")
        self.assertEqual(net.methods["mergeTick"], "commit")
        self.assertEqual(net.methods["applyPhaseMutant"], "unchecked")
        pool = self.models["PacketPool"]
        self.assertEqual(pool.methods["alloc"], "commit")

    def test_stamped_structures_detected(self):
        for name in ("Ni", "Domain", "Router"):
            self.assertTrue(self.models[name].has_stamp, name)

    def test_endpoint_phase_is_compute_checked(self):
        sm = self.models["SmCore"]
        self.assertEqual(sm.methods["tick"], "compute")
        self.assertEqual(sm.methods["executeMemAccess"], "compute")
        self.assertEqual(sm.methods["resolveOracleQueries"], "commit")
        self.assertEqual(self.models["MemNode"].methods["tick"],
                         "compute")
        self.assertEqual(self.models["CpuNode"].methods["tick"],
                         "compute")
        self.assertEqual(self.models["MesiDirectory"].methods["access"],
                         "compute")

    def test_locality_oracle_is_serial_callable(self):
        sm = self.models["SmCore"]
        self.assertEqual(sm.classification("localityOracle_"), "serial")
        self.assertIn("function",
                      sm.member_types.get("localityOracle_", ""))


class CleanTreeTest(unittest.TestCase):
    def test_annotated_tree_has_zero_findings(self):
        self.assertEqual(drphase.scan(REPO, ["src"]), [])

    def test_baseline_is_zero_violation(self):
        with open(os.path.join(REPO, "tools",
                               "drphase_baseline.json")) as fh:
            self.assertEqual(json.load(fh), {})


class MutantTest(unittest.TestCase):
    """Each seeded static mutant must be caught by its rule."""

    def scan_mutated(self, rel, old, new):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            path = os.path.join(tmp, rel)
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            self.assertIn(old, text,
                          "mutant anchor drifted out of %s" % rel)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text.replace(old, new, 1))
            return drphase.scan(tmp, ["src"])

    def assert_rule(self, findings, rule, path):
        hits = [f for f in findings if f.rule == rule]
        self.assertTrue(hits, "expected [%s], got %s"
                        % (rule, [str(f) for f in findings]))
        self.assertTrue(any(f.path == path for f in hits),
                        "rule [%s] not anchored in %s" % (rule, path))

    def test_mutant_wrong_phase_write(self):
        # niEject (compute) bumps a DR_SERIAL_ONLY global counter.
        findings = self.scan_mutated(
            "src/noc/network.cpp",
            "    (void)node;\n    DR_STAMP_WRITE(ni);",
            "    (void)node;\n    DR_STAMP_WRITE(ni);\n"
            "    ++stats_.packetsDelivered;")
        self.assert_rule(findings, "compute-writes-serial",
                         "src/noc/network.cpp")

    def test_mutant_unstaged_cross_domain(self):
        # deliverToRouter commits the cross-domain hop directly instead
        # of staging it through the SPSC buffer.
        findings = self.scan_mutated(
            "src/noc/network.cpp",
            "        stagedFlits_[static_cast<std::size_t>(producer) *"
            " numDomains_ +\n"
            "                     consumer]\n"
            "            .push_back({static_cast<std::int16_t>"
            "(conn.peerRouter),\n"
            "                        static_cast<std::int16_t>"
            "(conn.peerPort), when,\n"
            "                        flit});",
            "        routers_[conn.peerRouter]->acceptFlit("
            "conn.peerPort, flit, when);\n"
            "        domains_[consumer].activeRouters.add("
            "conn.peerRouter);")
        self.assert_rule(findings, "cross-domain-commit",
                         "src/noc/network.cpp")

    def test_mutant_missing_annotation(self):
        # A tick-reachable Network member loses its classification.
        findings = self.scan_mutated(
            "src/noc/network.hpp",
            "    std::vector<Ni> nis_ DR_DOMAIN_OWNED;",
            "    std::vector<Ni> nis_;")
        self.assert_rule(findings, "unannotated-state",
                         "src/noc/network.hpp")

    def test_mutant_commit_call_in_compute(self):
        # niInject (compute) churns the serial packet pool free list.
        findings = self.scan_mutated(
            "src/noc/network.cpp",
            "Network::niInject(Domain &d, Ni &ni, NodeId node, "
            "Cycle now)\n{\n    DR_STAMP_WRITE(ni);",
            "Network::niInject(Domain &d, Ni &ni, NodeId node, "
            "Cycle now)\n{\n    DR_STAMP_WRITE(ni);\n"
            "    pool_.release(pool_.alloc());")
        self.assert_rule(findings, "compute-calls-commit",
                         "src/noc/network.cpp")

    def test_mutant_spsc_drained_descending(self):
        # commitStaged walks producers backwards.
        findings = self.scan_mutated(
            "src/noc/network.cpp",
            "    for (int i = 0; i < numDomains_; ++i) {\n"
            "        int p = i;",
            "    for (int i = numDomains_ - 1; i >= 0; --i) {\n"
            "        int p = i;")
        self.assert_rule(findings, "spsc-drain-order",
                         "src/noc/network.cpp")

    def test_mutant_mid_tick_oracle_call(self):
        # The PR 7 bugfix in reverse: executeMemAccess (endpoint phase)
        # calls the cross-core locality oracle directly instead of
        # staging the query for the serial merge.
        findings = self.scan_mutated(
            "src/gpu/sm_core.cpp",
            "    ++stats_.loads;\n"
            "    ++stats_.l1Misses;\n"
            "    if (localityOracle_)\n"
            "        oracleQueries_.push_back(line);",
            "    ++stats_.loads;\n"
            "    ++stats_.l1Misses;\n"
            "    if (localityOracle_ && localityOracle_(coreIdx_, line))\n"
            "        ++stats_.missesWithRemoteCopy;")
        self.assert_rule(findings, "serial-call-in-compute",
                         "src/gpu/sm_core.cpp")

    def test_mutant_commit_call_in_endpoint_phase(self):
        # finishWarp (endpoint phase) hands out the next CTA inline via
        # the shared scheduler instead of deferring to refillCtas.
        findings = self.scan_mutated(
            "src/gpu/sm_core.cpp",
            "        pendingCtaRefills_.push_back(warp.slot);",
            "        assignCta(ctaSlots_[warp.slot], now);")
        self.assert_rule(findings, "compute-calls-commit",
                         "src/gpu/sm_core.cpp")

    def test_mutant_stamp_bypass(self):
        # niInject drops its writer stamp while still mutating the NI.
        findings = self.scan_mutated(
            "src/noc/network.cpp",
            "Cycle now)\n{\n    DR_STAMP_WRITE(ni);\n"
            "    while (!ni.creditArrivals.empty() &&",
            "Cycle now)\n{\n"
            "    while (!ni.creditArrivals.empty() &&")
        self.assert_rule(findings, "missing-stamp-check",
                         "src/noc/network.cpp")


class SuppressionTest(unittest.TestCase):
    def lint_with_edit(self, rel, old, new):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            path = os.path.join(tmp, rel)
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            assert old in text
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text.replace(old, new, 1))
            return drphase.scan(tmp, ["src"])

    def test_allow_comment_suppresses(self):
        findings = self.lint_with_edit(
            "src/noc/network.cpp",
            "    (void)node;\n    DR_STAMP_WRITE(ni);",
            "    (void)node;\n    DR_STAMP_WRITE(ni);\n"
            "    // drphase-allow(compute-writes-serial): test\n"
            "    ++stats_.packetsDelivered;")
        self.assertNotIn("compute-writes-serial", rules_in(findings))

    def test_wrong_rule_does_not_suppress(self):
        findings = self.lint_with_edit(
            "src/noc/network.cpp",
            "    (void)node;\n    DR_STAMP_WRITE(ni);",
            "    (void)node;\n    DR_STAMP_WRITE(ni);\n"
            "    // drphase-allow(unannotated-state): wrong rule\n"
            "    ++stats_.packetsDelivered;")
        self.assertIn("compute-writes-serial", rules_in(findings))


class BaselineTest(unittest.TestCase):
    def run_main(self, mutate, args):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            if mutate:
                path = os.path.join(tmp, "src/noc/network.cpp")
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
                old = "    (void)node;\n    DR_STAMP_WRITE(ni);"
                assert old in text
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(text.replace(
                        old, old + "\n    ++stats_.packetsDelivered;", 1))
            os.makedirs(os.path.join(tmp, "tools"), exist_ok=True)
            return drphase.main(["--root", tmp] + args)

    def test_clean_tree_passes_without_baseline(self):
        self.assertEqual(self.run_main(False, []), 0)

    def test_new_finding_fails(self):
        self.assertEqual(self.run_main(True, []), 1)

    def test_baselined_finding_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            with open(baseline, "w", encoding="utf-8") as fh:
                json.dump({"src/noc/network.cpp:compute-writes-serial": 1},
                          fh)
            self.assertEqual(
                self.run_main(True, ["--baseline", baseline]), 0)

    def test_update_baseline_roundtrip(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            self.assertEqual(
                self.run_main(True, ["--baseline", baseline,
                                     "--update-baseline"]), 0)
            with open(baseline, encoding="utf-8") as fh:
                counts = json.load(fh)
            self.assertEqual(
                counts, {"src/noc/network.cpp:compute-writes-serial": 1})

    def test_list_rules(self):
        self.assertEqual(drphase.main(["--list-rules"]), 0)

    def test_missing_compile_commands_degrades(self):
        # Without importable clang bindings the AST pass must degrade to
        # token results, not crash.
        self.assertEqual(
            self.run_main(False, ["--compile-commands",
                                  "/nonexistent/compile_commands.json"]),
            0)


if __name__ == "__main__":
    unittest.main(verbosity=2)

#!/usr/bin/env python3
"""Deterministic memory-node placement search (ISSUE 9).

Sweeps a deterministic family of memory-controller/LLC attach
placements (rows, columns, diagonal, perimeter, center block, uniform
grids — the shapes the placement literature ranks) for the configured
chip, running each candidate as a `drsim` subprocess with
`--set mem.placement=...`, and emits a ranked report ordered by GPU
IPC. Candidate generation is a pure function of the chip shape, every
simulation is deterministically seeded, and the report is assembled in
a fixed order after all runs finish, so the report bytes are identical
for every shard count: `-j` only changes the wall clock, exactly like
tools/run_sweep.py.

Usage:
    tools/run_placement.py [-j JOBS] [--drsim PATH] [-o REPORT]
                           [--gpu NAME] [--cpu NAME]
                           [--config FILE] [--set KEY=VALUE ...]

The chip shape (mesh width/height, memory-node count) is read back
from `drsim --dump-config` under the same --config/--set overrides, so
the candidates always match the swept configuration.
"""

import argparse
import json
import os
import subprocess
import sys
import threading
import time


def chip_shape(drsim, passthrough):
    """Read (width, height, memNodes) from drsim's effective config."""
    cmd = [drsim, "--dump-config"] + passthrough
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.exit(f"run_placement: '{' '.join(cmd)}' failed")
    values = {}
    for line in proc.stdout.splitlines():
        if "=" in line:
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()
    try:
        return (int(values["noc.meshWidth"]),
                int(values["noc.meshHeight"]),
                int(values["mem.numNodes"]))
    except (KeyError, ValueError):
        sys.exit("run_placement: could not read noc.meshWidth / "
                 "noc.meshHeight / mem.numNodes from --dump-config")


def spread(count, extent):
    """`count` distinct evenly spaced indices in [0, extent)."""
    return [int((i + 0.5) * extent / count) for i in range(count)]


def factor_pairs(m):
    """All (gx, gy) with gx * gy == m, ascending gx."""
    return [(gx, m // gx) for gx in range(1, m + 1) if m % gx == 0]


def candidates(width, height, mem_nodes):
    """Deterministic named placement family for a width x height chip.

    A pure function of the chip shape: same inputs, same candidates,
    same order. Shapes whose tiles would collide (e.g. a row placement
    with more memory nodes than columns) are dropped.
    """
    out = []
    seen = set()

    def add(name, tiles):
        key = tuple(sorted(tiles))
        if (len(set(key)) == mem_nodes and key not in seen
                and all(0 <= t < width * height for t in key)):
            seen.add(key)
            out.append((name, key))

    for label, row in (("top", 0), ("mid", height // 2),
                       ("bottom", height - 1)):
        add(f"row-{label}",
            [row * width + x for x in spread(mem_nodes, width)])
    for label, col in (("left", 0), ("mid", width // 2),
                       ("right", width - 1)):
        add(f"col-{label}",
            [y * width + col for y in spread(mem_nodes, height)])
    add("diagonal",
        [y * width + x for y, x in zip(spread(mem_nodes, height),
                                       spread(mem_nodes, width))])

    perimeter = ([x for x in range(width)]
                 + [y * width + (width - 1) for y in range(1, height)]
                 + [(height - 1) * width + x
                    for x in range(width - 2, -1, -1)]
                 + [y * width for y in range(height - 2, 0, -1)])
    if mem_nodes <= len(perimeter):
        add("perimeter", [perimeter[i]
                          for i in spread(mem_nodes, len(perimeter))])

    for gx, gy in factor_pairs(mem_nodes):
        add(f"grid-{gx}x{gy}",
            [y * width + x
             for y in spread(gy, height) for x in spread(gx, width)])

    side = 1
    while side * side < mem_nodes:
        side += 1
    x0 = max(0, (width - side) // 2)
    y0 = max(0, (height - side) // 2)
    add("center-block",
        [(y0 + i // side) * width + x0 + i % side
         for i in range(mem_nodes)])
    return out


def run_candidate(drsim, passthrough, gpu, cpu, tiles):
    """One placement run; returns (gpuIpc, memBlockingRate) or None."""
    placement = ",".join(str(t) for t in tiles)
    cmd = [drsim, "--gpu", gpu, "--cpu", cpu, "--stats", "json",
           "--set", f"mem.placement={placement}"] + passthrough
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        return None
    try:
        stats = json.loads(proc.stdout)
        return (float(stats["sim.gpuIpc"]),
                float(stats["sim.memBlockingRate"]))
    except (ValueError, KeyError):
        return None


def format_report(shape, gpu, cpu, tiles_by_name, results):
    """Ranked report text; a pure function of the result map, so the
    bytes cannot depend on completion order or shard count."""
    width, height, mem_nodes = shape
    lines = [f"== placement search: {width}x{height} mesh, "
             f"{mem_nodes} memory nodes, gpu={gpu} cpu={cpu} ==",
             f"{'rank':<5} {'placement':<14} {'gpuIpc':>8} "
             f"{'memBlock':>9}  tiles"]
    ranked = sorted(results.items(),
                    key=lambda kv: (-kv[1][0], kv[0]))
    for rank, (name, (ipc, blocking)) in enumerate(ranked, start=1):
        tiles = ",".join(str(t) for t in tiles_by_name[name])
        lines.append(f"{rank:<5} {name:<14} {ipc:>8.3f} "
                     f"{blocking:>9.3f}  {tiles}")
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Deterministic sharded memory-placement search")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="max concurrent runs (default: host cores)")
    parser.add_argument("--drsim", default="build/tools/drsim",
                        help="simulator binary (default: "
                             "build/tools/drsim)")
    parser.add_argument("-o", "--output", default="placement_report.txt",
                        help="ranked report path (default: "
                             "placement_report.txt)")
    parser.add_argument("--gpu", default="HS", help="GPU benchmark")
    parser.add_argument("--cpu", default="bodytrack",
                        help="CPU benchmark")
    parser.add_argument("--config", help="config file passed to drsim")
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="config override passed to drsim "
                             "(repeatable)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    passthrough = []
    if args.config:
        passthrough += ["--config", args.config]
    for kv in args.overrides:
        passthrough += ["--set", kv]

    shape = chip_shape(args.drsim, passthrough)
    family = candidates(*shape)
    if not family:
        sys.exit("run_placement: no placement fits "
                 f"{shape[0]}x{shape[1]} with {shape[2]} memory nodes")
    tiles_by_name = dict(family)

    pool = threading.Semaphore(args.jobs)
    lock = threading.Lock()
    results = {}
    failures = []

    def run_one(name, tiles):
        stats = run_candidate(args.drsim, passthrough, args.gpu,
                              args.cpu, tiles)
        with lock:
            if stats is None:
                failures.append(name)
            else:
                results[name] = stats
            done = len(results) + len(failures)
            print(f"run_placement: [{done}/{len(family)}] {name}",
                  flush=True)
        pool.release()

    start = time.monotonic()
    print(f"run_placement: {len(family)} candidates on a "
          f"{shape[0]}x{shape[1]} chip, {args.jobs} concurrent",
          flush=True)
    threads = []
    for name, tiles in family:
        pool.acquire()
        t = threading.Thread(target=run_one, args=(name, tiles))
        t.start()
        threads.append(t)
    for t in threads:
        t.join()

    if failures:
        print(f"run_placement: FAILED: {sorted(failures)}",
              file=sys.stderr)
        return 1

    report = format_report(shape, args.gpu, args.cpu, tiles_by_name,
                           results)
    with open(args.output, "w", encoding="utf-8") as out:
        out.write(report)
    print(report, end="")
    print(f"run_placement: {time.monotonic() - start:.1f}s, "
          f"report: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * drsim — the command-line simulator front-end.
 *
 * Usage:
 *   drsim [options]
 *     --config FILE       load a key=value configuration file
 *     --set KEY=VALUE     override one option (repeatable)
 *     --gpu NAME          GPU benchmark (default HS; see --list)
 *     --cpu NAME          CPU benchmark (default bodytrack)
 *     --stats FORMAT      text | csv | json (default text summary only)
 *     --watchdog N        abort with a router-state dump if the system
 *                         makes no forward progress for N cycles
 *     --check             run the invariant sweep (flit/credit
 *                         conservation, MSHR leaks) after the run
 *     --dump-config       print the effective configuration and exit
 *     --list              list benchmarks and exit
 *     --help
 *
 * Examples:
 *   drsim --gpu 2DCON --cpu canneal --set mechanism=delegated-replies
 *   drsim --config experiments/dragonfly.cfg --stats json > out.json
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/log.hpp"
#include "core/config_io.hpp"
#include "core/hetero_system.hpp"
#include "core/layout.hpp"
#include "core/stats_report.hpp"
#include "cpu/cpu_profile.hpp"
#include "workloads/gpu_benchmarks.hpp"

using namespace dr;

namespace
{

void
usage()
{
    std::printf(
        "drsim - Delegated Replies heterogeneous-chip simulator\n"
        "  --config FILE     load a key=value configuration file\n"
        "  --set KEY=VALUE   override one option (repeatable)\n"
        "  --gpu NAME        GPU benchmark (default HS)\n"
        "  --cpu NAME        CPU benchmark (default bodytrack)\n"
        "  --stats FORMAT    text | csv | json full stats dump\n"
        "  --watchdog N      abort with a state dump after N cycles of\n"
        "                    no forward progress\n"
        "  --check           run the invariant sweep after the run\n"
        "  --dump-config     print the effective configuration and exit\n"
        "  --list            list benchmarks and exit\n");
}

void
listBenchmarks()
{
    std::printf("GPU benchmarks:");
    for (const auto &name : gpuBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\nCPU benchmarks:");
    for (const auto &name : cpuBenchmarkNames())
        std::printf(" %s", name.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg = SystemConfig::makePaper();
    std::string gpu = "HS";
    std::string cpu = "bodytrack";
    std::string statsFormat;
    bool dumpConfig = false;
    bool checkAfterRun = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("drsim: '", arg, "' needs an argument");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            listBenchmarks();
            return 0;
        } else if (arg == "--config") {
            parseConfigFile(cfg, next());
        } else if (arg == "--set") {
            const std::string kv = next();
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                fatal("drsim: --set expects KEY=VALUE, got '", kv, "'");
            applyConfigOption(cfg, kv.substr(0, eq), kv.substr(eq + 1));
        } else if (arg == "--gpu") {
            gpu = next();
        } else if (arg == "--cpu") {
            cpu = next();
        } else if (arg == "--stats") {
            statsFormat = next();
        } else if (arg == "--watchdog") {
            applyConfigOption(cfg, "debug.watchdogCycles", next());
        } else if (arg == "--check") {
            checkAfterRun = true;
        } else if (arg == "--dump-config") {
            dumpConfig = true;
        } else {
            fatal("drsim: unknown argument '", arg, "'");
        }
    }

    if (dumpConfig) {
        writeConfig(cfg, std::cout);
        return 0;
    }
    cfg.validate();

    HeteroSystem system(cfg, gpu, cpu);
    const RunResults r = system.run();
    if (checkAfterRun)
        system.checkInvariants();

    if (statsFormat.empty()) {
        std::printf("workload           %s + %s\n", gpu.c_str(),
                    cpu.c_str());
        std::printf("mechanism          %s\n",
                    mechanismName(cfg.mechanism));
        std::printf("layout/topology    %s / %s\n",
                    layoutName(cfg.layout),
                    topologyName(cfg.noc.topology));
        std::printf("cycles measured    %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("GPU IPC            %.3f\n", r.gpuIpc);
        std::printf("CPU IPC/core       %.3f\n", r.cpuIpc);
        std::printf("CPU latency        %.1f cycles\n", r.cpuLatency);
        std::printf("GPU data rate      %.3f flits/cycle/core\n",
                    r.gpuDataRate);
        std::printf("mem blocking       %.1f %%\n",
                    100.0 * r.memBlockingRate);
        std::printf("L1 miss rate       %.1f %%\n",
                    100.0 * r.gpuL1MissRate);
        std::printf("misses forwarded   %.1f %%\n",
                    100.0 * r.forwardedFraction());
        std::printf("remote hit rate    %.1f %%\n",
                    100.0 * r.remoteHitRate());
        return 0;
    }

    const StatsReport report =
        StatsReport::capture(system, cfg.simCycles);
    if (statsFormat == "text")
        report.writeText(std::cout);
    else if (statsFormat == "csv")
        report.writeCsv(std::cout);
    else if (statsFormat == "json")
        report.writeJson(std::cout);
    else
        fatal("drsim: unknown stats format '", statsFormat, "'");
    return 0;
}

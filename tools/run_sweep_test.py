#!/usr/bin/env python3
"""Self-test for run_sweep.py (stdlib unittest; wired into ctest).

The property that matters is shard-count independence: the combined
bench_output.txt must be byte-identical whatever -j is, because
EXPERIMENTS.md is regenerated from it and any nondeterminism there
would masquerade as a simulation result change. The tests drive
run_sweep.main() against a fake build tree of executable stub benches
whose completion order is deliberately scrambled with sleeps.
"""

import os
import stat
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import run_sweep  # noqa: E402


def write_bench(bench_dir, name, body):
    path = os.path.join(bench_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("#!/bin/sh\n" + body)
    os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR | stat.S_IXGRP
             | stat.S_IXOTH)


class FakeBuild:
    """Temp build tree with stub benches; completion order is scrambled
    (later names finish first) so interleaving bugs would show."""

    def __init__(self, fail=()):
        self.fail = fail

    def __enter__(self):
        self.tmp = tempfile.TemporaryDirectory()
        bench_dir = os.path.join(self.tmp.name, "build", "bench")
        os.makedirs(bench_dir)
        delays = {"alpha": 0.3, "bravo": 0.15, "charlie": 0.0}
        for name, delay in delays.items():
            lines = [f"sleep {delay}\n"] if delay else []
            for i in range(5):
                lines.append(f"echo {name} line {i}\n")
            if name in self.fail:
                lines.append("exit 3\n")
            write_bench(bench_dir, name, "".join(lines))
        write_bench(bench_dir, "perf_kernel",
                    "echo perf_kernel must not run\nexit 9\n")
        return self

    def __exit__(self, *exc):
        self.tmp.cleanup()
        return False

    def run(self, jobs, out_name, benches=()):
        out_dir = os.path.join(self.tmp.name, out_name)
        argv = ["-j", str(jobs),
                "-b", os.path.join(self.tmp.name, "build"),
                "-o", out_dir] + list(benches)
        rc = run_sweep.main(argv)
        combined = os.path.join(out_dir, "bench_output.txt")
        data = b""
        if os.path.exists(combined):
            with open(combined, "rb") as fh:
                data = fh.read()
        return rc, data


class ShardIndependenceTest(unittest.TestCase):
    def test_combined_log_bytes_identical_across_jobs(self):
        with FakeBuild() as fb:
            rc1, serial = fb.run(1, "out_j1")
            rc4, sharded = fb.run(4, "out_j4")
        self.assertEqual(rc1, 0)
        self.assertEqual(rc4, 0)
        self.assertGreater(len(serial), 0)
        self.assertEqual(serial, sharded,
                         "combined log depends on shard count")

    def test_combined_log_is_alphabetical_concatenation(self):
        with FakeBuild() as fb:
            rc, data = fb.run(4, "out")
        self.assertEqual(rc, 0)
        text = data.decode()
        self.assertLess(text.index("alpha line 0"),
                        text.index("bravo line 0"))
        self.assertLess(text.index("bravo line 4"),
                        text.index("charlie line 0"))

    def test_perf_kernel_excluded_by_default(self):
        with FakeBuild() as fb:
            rc, data = fb.run(2, "out")
        self.assertEqual(rc, 0)
        self.assertNotIn(b"perf_kernel", data)

    def test_explicit_selection_runs_only_named(self):
        with FakeBuild() as fb:
            rc, data = fb.run(2, "out", benches=["bravo"])
        self.assertEqual(rc, 0)
        self.assertIn(b"bravo line 0", data)
        self.assertNotIn(b"alpha", data)


class FailurePropagationTest(unittest.TestCase):
    def test_failing_bench_fails_the_sweep(self):
        with FakeBuild(fail={"bravo"}) as fb:
            rc, data = fb.run(4, "out")
        self.assertEqual(rc, 1)
        # Logs of the failing bench are still collected.
        self.assertIn(b"bravo line 4", data)

    def test_unknown_bench_rejected(self):
        with FakeBuild() as fb:
            with self.assertRaises(SystemExit):
                fb.run(1, "out", benches=["nonesuch"])


if __name__ == "__main__":
    unittest.main(verbosity=2)

#!/usr/bin/env python3
"""Selftest for tools/drreach.py: seeded mutants prove the cross-TU
reachability analyzer detects each rule it claims to enforce.

Mirrors tools/drphase_test.py: every mutant test copies the live tree
into a tempdir, applies a textual patch (mutants need not compile --
the analyzer is token-level), re-scans, and asserts the expected rule
fires at the expected file. Anchor strings are asserted present first
so refactors that would silently neuter a mutant fail loudly instead.

Run directly (`python3 tools/drreach_test.py`) or via ctest
(`drreach_selftest`).
"""

import contextlib
import io
import json
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import drreach  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The analyzer chases edges across the whole of src/, so the selftest
# copies all of it: a partial tree could miss the annotation that keeps
# a chain clean and report findings the real scan never would.
COPY_DIRS = ("src",)

COHERENCE = "src/coherence/gpu_coherence.hpp"
SM_CORE = "src/gpu/sm_core.cpp"
SHARED_CPP = "src/gpu/shared_l1.cpp"
SHARED_HPP = "src/gpu/shared_l1.hpp"
L1_IFACE = "src/gpu/l1_cache.hpp"

# Anchor lines in the live tree (asserted before patching).
FLUSHES_GETTER = ("    const Counter &flushes() const DR_PHASE_READ "
                  "{ return flushes_; }")
FILL_CALL = "    l1_.fill(coreIdx_, line);"
CONTAINS_HEAD = ("SharedL1::contains(int core, Addr lineAddr) const\n"
                 "{\n"
                 "    const int cluster = clusterOf(core);")
SAFE_TRUE = "    bool concurrentSafe() const override { return true; }"
CLAIMS_PUSH = ("    perCore_[core].claims.push_back("
               "slotOf(cluster, slice));")
CONTAINS_PURE = ("    virtual bool contains(int core, Addr lineAddr) "
                 "const = 0;")


def make_tree(tmp):
    for d in COPY_DIRS:
        shutil.copytree(os.path.join(REPO, d), os.path.join(tmp, d))
    os.makedirs(os.path.join(tmp, "tools"), exist_ok=True)
    shutil.copy(os.path.join(REPO, "tools", "drreach_baseline.json"),
                os.path.join(tmp, "tools", "drreach_baseline.json"))


def apply_patches(tmp, patches):
    """Each patch is (rel, old, new); `old` must exist verbatim."""
    for rel, old, new in patches:
        path = os.path.join(tmp, rel)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        assert old in text, "mutant anchor drifted in %s: %r" % (rel,
                                                                 old)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text.replace(old, new, 1))


def scan_mutated(patches, verdicts=None):
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        apply_patches(tmp, patches)
        return drreach.scan(tmp, ["src"], None, verdicts)


class CleanTreeTest(unittest.TestCase):
    """The live tree scans clean and the committed baseline is zero."""

    def test_live_tree_has_no_findings(self):
        findings = drreach.scan(REPO, ["src"])
        self.assertEqual([str(f) for f in findings], [])

    def test_baseline_is_zero(self):
        with open(os.path.join(REPO, "tools",
                               "drreach_baseline.json"),
                  encoding="utf-8") as fh:
            self.assertEqual(json.load(fh), {})

    def test_all_organizers_confined_and_safe(self):
        verdicts = {}
        drreach.scan(REPO, ["src"], None, verdicts)
        prog = drreach.scan.last_prog
        for cls in ("PrivateL1", "SharedL1", "DynEbL1"):
            self.assertIn(cls, verdicts)
            self.assertTrue(verdicts[cls].confined,
                            "%s unconfined: %s"
                            % (cls, verdicts[cls].reasons))
            declared, _ = drreach.inherited_concurrent_safe(prog, cls)
            self.assertIs(declared, True, cls)
        self.assertIn("SharedL1", verdicts["DynEbL1"].delegates)


class HelperTest(unittest.TestCase):
    """Unit coverage for the confinement-walk text scanners."""

    def test_deep_mutating_call_two_levels(self):
        self.assertTrue(drreach.deep_mutating_call(
            "perCore_[core].claims.push_back(slot);", "perCore_"))

    def test_deep_mutating_call_one_level(self):
        self.assertTrue(drreach.deep_mutating_call(
            "tags_[i].insert(addr, {});", "tags_"))

    def test_deep_non_mutating_chain_ignored(self):
        self.assertFalse(drreach.deep_mutating_call(
            "n += perCore_[core].claims.size();", "perCore_"))

    def test_normalize_index_strips_cast(self):
        self.assertEqual(
            drreach.normalize_index("static_cast<int>( core )"),
            "core")

    def test_first_subscript_balanced(self):
        self.assertEqual(
            drreach.first_subscript("banks_[idx[0]].x = 1;", "banks_"),
            "idx[0]")


class MutantTest(unittest.TestCase):
    """Each seeded mutant must be detected by its dedicated rule."""

    def assert_rule(self, findings, rule, path, contains=None):
        hits = [f for f in findings
                if f.rule == rule and f.path == path]
        self.assertTrue(hits, "expected [%s] in %s, got %s"
                        % (rule, path, [str(f) for f in findings]))
        if contains is not None:
            self.assertTrue(any(contains in f.text for f in hits),
                            "no [%s] finding mentions %r: %s"
                            % (rule, contains,
                               [str(f) for f in hits]))

    def test_mutant_cross_tu_phase_escape(self):
        # An endpoint-phase SmCore body calls a helper in another TU
        # whose body writes a DR_SERIAL_ONLY member. drphase alone is
        # blind to this (the call is not in MUTATING_CALLS and the
        # write sits in an unannotated method).
        findings = scan_mutated([
            (COHERENCE, FLUSHES_GETTER, FLUSHES_GETTER +
             "\n\n    void touchEpoch(int gpuCoreIdx)"
             " { epochs_[gpuCoreIdx] = 0; }"),
            (SM_CORE, FILL_CALL, FILL_CALL +
             "\n    coherence_.touchEpoch(coreIdx_);"),
        ])
        self.assert_rule(findings, "phase-escape", COHERENCE,
                         contains="epochs_")

    def test_mutant_two_hop_phase_escape(self):
        # Two hops: endpoint body -> unannotated helper -> second
        # unannotated helper that bumps a serial counter. The chain
        # label must name both intermediate methods.
        findings = scan_mutated([
            (COHERENCE, FLUSHES_GETTER, FLUSHES_GETTER +
             "\n\n    void noteFlushHint(int gpuCoreIdx)"
             " { bumpFlushes(gpuCoreIdx); }"
             "\n    void bumpFlushes(int) { ++flushes_; }"),
            (SM_CORE, FILL_CALL, FILL_CALL +
             "\n    coherence_.noteFlushHint(coreIdx_);"),
        ])
        self.assert_rule(findings, "phase-escape", COHERENCE,
                         contains="flushes_")
        hits = [f for f in findings if f.rule == "phase-escape"
                and f.path == COHERENCE]
        self.assertTrue(any("noteFlushHint" in f.text
                            and "bumpFlushes" in f.text for f in hits),
                        "chain labels missing: %s"
                        % [str(f) for f in hits])

    def test_mutant_virtual_dispatch_phase_escape(self):
        # A serial-state write hidden inside a virtual override that
        # endpoint bodies reach through the L1Organizer interface
        # (l1_.contains). Only the family fan-out sees it.
        findings = scan_mutated([
            (SHARED_CPP, CONTAINS_HEAD, CONTAINS_HEAD +
             "\n    ++aggregate_.loadHits;"),
        ])
        self.assert_rule(findings, "phase-escape", SHARED_CPP,
                         contains="aggregate_")

    def test_mutant_virtual_dispatch_unclassified(self):
        # A bodiless, non-pure virtual reached from an endpoint body:
        # no override to analyze, no declared phase -> unclassifiable.
        findings = scan_mutated([
            (L1_IFACE, CONTAINS_PURE, CONTAINS_PURE +
             "\n    virtual void prefetch(int gpuCoreIdx);"),
            (SM_CORE, FILL_CALL, FILL_CALL +
             "\n    l1_.prefetch(coreIdx_);"),
        ])
        self.assert_rule(findings, "virtual-dispatch-unclassified",
                         SM_CORE, contains="prefetch")

    def test_mutant_concurrent_safe_flipped_false(self):
        # SharedL1 stays core-confined but declares false: the stale
        # serial fallback direction of confinement-mismatch.
        verdicts = {}
        findings = scan_mutated([
            (SHARED_HPP, SAFE_TRUE,
             SAFE_TRUE.replace("true", "false")),
        ], verdicts)
        self.assert_rule(findings, "confinement-mismatch", SHARED_HPP,
                         contains="SharedL1")
        self.assertTrue(verdicts["SharedL1"].confined)

    def test_mutant_cross_core_bank_write(self):
        # The staged claim lands in core 0's bank regardless of the
        # calling core: unconfined, yet still declared concurrentSafe.
        verdicts = {}
        findings = scan_mutated([
            (SHARED_CPP, CLAIMS_PUSH,
             CLAIMS_PUSH.replace("perCore_[core]", "perCore_[0]")),
        ], verdicts)
        self.assert_rule(findings, "confinement-mismatch", SHARED_HPP,
                         contains="SharedL1")
        self.assertFalse(verdicts["SharedL1"].confined)
        # DynEbL1 delegates to SharedL1, so its verdict degrades too.
        self.assertFalse(verdicts["DynEbL1"].confined)


class SuppressionTest(unittest.TestCase):
    """drreach-allow(<rule>) at the call site kills the whole chain."""

    PATCHES_ALLOWED = [
        (COHERENCE, FLUSHES_GETTER, FLUSHES_GETTER +
         "\n\n    void touchEpoch(int gpuCoreIdx)"
         " { epochs_[gpuCoreIdx] = 0; }"),
        (SM_CORE, FILL_CALL, FILL_CALL +
         "\n    coherence_.touchEpoch("
         "coreIdx_);  // drreach-allow(phase-escape)"),
    ]

    def test_allow_comment_suppresses(self):
        findings = scan_mutated(self.PATCHES_ALLOWED)
        self.assertEqual(
            [str(f) for f in findings
             if f.rule == "phase-escape"], [])

    def test_wrong_rule_does_not_suppress(self):
        patches = [(rel, old,
                    new.replace("drreach-allow(phase-escape)",
                                "drreach-allow(confinement-mismatch)"))
                   for rel, old, new in self.PATCHES_ALLOWED]
        findings = scan_mutated(patches)
        self.assertTrue(any(f.rule == "phase-escape"
                            for f in findings))


class BaselineTest(unittest.TestCase):
    """CLI exit codes and the baseline ratchet."""

    MUTANT = [
        (COHERENCE, FLUSHES_GETTER, FLUSHES_GETTER +
         "\n\n    void touchEpoch(int gpuCoreIdx)"
         " { epochs_[gpuCoreIdx] = 0; }"),
        (SM_CORE, FILL_CALL, FILL_CALL +
         "\n    coherence_.touchEpoch(coreIdx_);"),
    ]

    def run_main(self, tmp, extra=None):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = drreach.main(["--root", tmp] + (extra or []))
        return code, out.getvalue()

    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            code, _ = self.run_main(tmp)
            self.assertEqual(code, 0)

    def test_mutant_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            apply_patches(tmp, self.MUTANT)
            code, out = self.run_main(tmp)
            self.assertEqual(code, 1)
            self.assertIn("phase-escape", out)

    def test_update_baseline_roundtrip(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            apply_patches(tmp, self.MUTANT)
            code, _ = self.run_main(tmp, ["--update-baseline"])
            self.assertEqual(code, 0)
            code, _ = self.run_main(tmp)
            self.assertEqual(code, 0, "ratcheted finding resurfaced")

    def test_list_rules_names_new_rules(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            code, out = self.run_main(tmp, ["--list-rules"])
            self.assertEqual(code, 0)
            for rule in ("phase-escape", "virtual-dispatch-unclassified",
                         "confinement-mismatch"):
                self.assertIn(rule, out)

    def test_missing_compile_commands_degrades(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            code, _ = self.run_main(
                tmp, ["--compile-commands",
                      os.path.join(tmp, "nope", "cc.json")])
            self.assertEqual(code, 0)

    def test_all_prints_verdict_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(tmp)
            code, out = self.run_main(tmp, ["--all"])
            self.assertEqual(code, 0)
            self.assertIn("confinement verdicts", out)
            self.assertIn("SharedL1", out)
            self.assertIn("DynEbL1", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)

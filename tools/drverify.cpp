/**
 * @file
 * drverify — exhaustive explicit-state checker for the Delegated
 * Replies protocol (see src/verify/ and DESIGN.md §10).
 *
 * Usage:
 *   drverify [options]
 *     --config NAME     run one named configuration (default: standard)
 *     --all             run every named configuration and check that
 *                       each mutant reports its expected violation
 *     --list            list named configurations and exit
 *     --cores N         custom cold-start config: SM cores (2..6)
 *     --lines N         custom: distinct cache lines (1..8)
 *     --reads N         custom: reads per core (1..4)
 *     --max-states N    abort bound on visited states (default 1e6)
 *     --no-livelock     skip the cycle-detection pass
 *     --verbose         print every state along a counterexample
 *     --help
 *
 * Exit status: 0 = every run matched expectations, 2 = a property
 * failed unexpectedly (or a mutant was not detected), 3 = state
 * limit reached.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/checker.hpp"
#include "verify/configs.hpp"

using namespace dr;

namespace
{

void
usage()
{
    std::printf(
        "drverify - exhaustive DR-protocol model checker\n"
        "  --config NAME   run one named configuration (see --list)\n"
        "  --all           run every configuration; mutants must fail\n"
        "                  with their expected property\n"
        "  --list          list named configurations and exit\n"
        "  --cores N       custom cold config: SM cores (2..6)\n"
        "  --lines N       custom cold config: lines (1..8)\n"
        "  --reads N       custom cold config: reads per core (1..4)\n"
        "  --max-states N  visited-state bound (default 1000000)\n"
        "  --no-livelock   skip the cycle-detection pass\n"
        "  --verbose       print every state along a counterexample\n");
}

void
listConfigs()
{
    std::printf("named configurations:\n");
    for (const auto &c : verify::allConfigs()) {
        std::printf("  %-16s %s%s\n", c.name.c_str(), c.summary.c_str(),
                    c.expectation.empty()
                        ? ""
                        : ("  [expects " + c.expectation + "]").c_str());
    }
}

/** Returns the process exit code for one checked configuration. */
int
runOne(const verify::NamedConfig &named, const verify::CheckOptions &opts,
       bool verbose)
{
    std::printf("== %s: %s\n", named.name.c_str(), named.summary.c_str());
    verify::Model model(named.config);
    const verify::CheckResult result = verify::check(model, opts);
    std::fputs(verify::formatResult(model, result, verbose).c_str(),
               stdout);
    if (result.hitStateLimit)
        return 3;
    if (named.expectation.empty())
        return result.passed ? 0 : 2;
    if (result.passed) {
        std::printf("FAIL: mutant was expected to violate %s but "
                    "passed\n",
                    named.expectation.c_str());
        return 2;
    }
    if (result.violatedProperty != named.expectation) {
        std::printf("FAIL: mutant was expected to violate %s but the "
                    "checker reported %s\n",
                    named.expectation.c_str(),
                    result.violatedProperty.c_str());
        return 2;
    }
    std::printf("OK: mutant detected as expected (%s)\n",
                named.expectation.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string configName;
    bool runAll = false;
    bool verbose = false;
    int cores = 0;
    int lines = 2;
    int reads = 1;
    verify::CheckOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "drverify: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            listConfigs();
            return 0;
        } else if (arg == "--all") {
            runAll = true;
        } else if (arg == "--config") {
            configName = value();
        } else if (arg == "--cores") {
            cores = std::atoi(value());
        } else if (arg == "--lines") {
            lines = std::atoi(value());
        } else if (arg == "--reads") {
            reads = std::atoi(value());
        } else if (arg == "--max-states") {
            opts.maxStates =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--no-livelock") {
            opts.checkLivelock = false;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            std::fprintf(stderr, "drverify: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (runAll) {
        int worst = 0;
        for (const auto &named : verify::allConfigs()) {
            const int rc = runOne(named, opts, verbose);
            if (rc > worst)
                worst = rc;
            std::printf("\n");
        }
        std::printf(worst == 0 ? "all configurations behaved as "
                                 "expected\n"
                               : "some configurations FAILED\n");
        return worst;
    }

    if (cores > 0) {
        // Cold-start custom configuration: no warm pointer or L1
        // contents, so delegation arises organically from repeated
        // reads of the same line.
        verify::NamedConfig named;
        named.name = "custom";
        named.summary = std::to_string(cores) + " cores / " +
                        std::to_string(lines) + " lines / " +
                        std::to_string(reads) + " reads, cold start";
        verify::ModelConfig cfg;
        cfg.numCores = cores;
        cfg.numLines = lines;
        cfg.maxReadsPerCore = reads;
        cfg.llcPresent = 0;
        named.config = cfg;
        return runOne(named, opts, verbose);
    }

    const verify::NamedConfig *named =
        verify::findConfig(configName.empty() ? "standard" : configName);
    if (named == nullptr) {
        std::fprintf(stderr, "drverify: unknown configuration '%s'\n",
                     configName.c_str());
        listConfigs();
        return 2;
    }
    return runOne(*named, opts, verbose);
}

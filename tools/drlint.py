#!/usr/bin/env python3
"""drlint - token-level determinism lint for the simulator sources.

The simulator must be bit-reproducible for a fixed seed (DESIGN.md
paragraph 6): iteration over hash containers, raw randomness, wall-clock
reads and pointer-valued ordering all leak host/allocator state into
simulation results. This pass flags those hazards:

  unordered-container      declaration of std::unordered_map/set (must
                           carry a drlint-allow annotation arguing that
                           iteration order is never observed)
  unordered-iteration      range-for / .begin() / iterator loops over a
                           container declared unordered in the same file
  raw-random               rand()/srand()/std::random_device/std::mt19937
                           etc. outside the seeded Rng wrapper
                           (src/common/rng.hpp)
  wall-clock               time()/clock()/gettimeofday/chrono clocks in
                           simulation code (timing belongs in tools/
                           benchmarks, not in model state)
  pointer-keyed-container  std::map/std::set/unordered_* keyed on a raw
                           pointer type (allocator-dependent order/hash)

Suppression: append ``// drlint-allow(<rule>)`` (optionally with a
``: reason``) on the offending line or anywhere in the contiguous
``//`` comment block directly above it.

A checked-in JSON baseline (tools/drlint_baseline.json) records accepted
per-file/per-rule counts; the pass fails when a count exceeds the
baseline, so new hazards cannot land silently. Run with
``--update-baseline`` after deliberately accepting a change.

Usage:
  drlint.py [--baseline FILE] [--update-baseline] [--list-rules] [paths]

Exits 0 when clean against the baseline, 1 on new findings, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

RULES = {
    "unordered-container":
        "std::unordered_map/std::unordered_set declaration (annotate "
        "with drlint-allow if iteration order is never observed)",
    "unordered-iteration":
        "iteration over a container declared unordered in this file",
    "raw-random":
        "raw randomness outside the seeded RNG wrapper",
    "wall-clock":
        "wall-clock/time source in simulation code",
    "pointer-keyed-container":
        "ordered/hashed container keyed on a raw pointer",
    "atomic-rmw-order":
        "atomic RMW in src/noc/ without an explicit memory_order (the "
        "default seq_cst hides the intended ordering contract of the "
        "parallel tick engine's handoffs)",
}

# Files whose whole purpose exempts them from one rule.
EXEMPT = {
    os.path.join("src", "common", "rng.hpp"): {"raw-random"},
}

ALLOW_RE = re.compile(r"drlint-allow\(([a-z-]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
# `for (... : name)` range-for, or explicit iterator walks.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*(?:this\s*->\s*)?"
                          r"([A-Za-z_]\w*)\s*\)")
# .end() alone is the find()-comparison idiom, not iteration, so only
# the begin family counts.
ITER_CALL_RE = re.compile(r"\b(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\.\s*"
                          r"(?:begin|cbegin|rbegin)\s*\(")
RAW_RANDOM_RE = re.compile(
    r"\bstd\s*::\s*(?:random_device|mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|random_shuffle)\b"
    r"|(?<![\w:])(?:rand|srand|rand_r|drand48|lrand48|random)\s*\(")
WALL_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)\b"
    r"|(?<![\w:])(?:time|clock|gettimeofday|clock_gettime)\s*\(")
POINTER_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?(?:map|set|multimap|multiset)\s*<"
    r"\s*(?:const\s+)?[A-Za-z_]\w*(?:\s*::\s*\w+)*\s*\*")
# Atomic read-modify-write entry points. std::atomic's ++/--/+= sugar
# is also seq_cst-only, so the operators count as RMWs too when applied
# to a member the file declares atomic; the explicit calls below are
# the primary surface.
ATOMIC_RMW_RE = re.compile(
    r"\.\s*(fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"exchange|compare_exchange_weak|compare_exchange_strong)\s*\(")

BLOCK_COMMENT_START_RE = re.compile(r"/\*")


class Finding:
    def __init__(self, path: str, line: int, rule: str, text: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.text = text

    def __str__(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.text.strip())


def strip_code(lines: list[str]) -> list[str]:
    """Return lines with comments and string/char literals blanked.

    A small state machine rather than a regex so that block comments
    spanning lines and quotes inside comments are handled; the lint
    rules then run on code tokens only.
    """
    out = []
    in_block = False
    for raw in lines:
        res = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                res.append(quote + quote)
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of allowed rules on that line."""
    allows: dict[int, set[str]] = {}
    for lineno, raw in enumerate(lines, start=1):
        for match in ALLOW_RE.finditer(raw):
            allows.setdefault(lineno, set()).add(match.group(1))
    return allows


def unordered_names(code: list[str]) -> set[str]:
    """Names of members/locals declared with an unordered container."""
    names: set[str] = set()
    for idx, line in enumerate(code):
        for match in UNORDERED_DECL_RE.finditer(line):
            # The declared name is the first identifier after the
            # closing angle bracket; scan forward across lines because
            # long template arguments wrap.
            depth = 0
            text = line[match.end() - 1:]
            j = idx
            while True:
                for pos, ch in enumerate(text):
                    if ch == "<":
                        depth += 1
                    elif ch == ">":
                        depth -= 1
                        if depth == 0:
                            rest = text[pos + 1:]
                            m = re.search(r"\b([A-Za-z_]\w*)", rest)
                            if m:
                                names.add(m.group(1))
                            break
                else:
                    j += 1
                    if depth <= 0 or j >= len(code):
                        break
                    text = code[j]
                    continue
                break
    return names


def sibling_unordered_names(path: str) -> set[str]:
    """Unordered members declared in the sibling header of a .cpp.

    Members are typically declared in ``x.hpp`` and iterated in
    ``x.cpp``; without this the iteration rule only sees same-file
    declarations.
    """
    stem, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc"):
        return set()
    for hdr_ext in (".hpp", ".h"):
        hdr = stem + hdr_ext
        if os.path.isfile(hdr):
            with open(hdr, encoding="utf-8", errors="replace") as fh:
                return unordered_names(strip_code(
                    fh.read().splitlines()))
    return set()


def rmw_has_order(code: list[str], line_idx: int, open_idx: int) -> bool:
    """Whether the call whose '(' is at code[line_idx][open_idx] names a
    memory_order in its argument list (scans across wrapped lines)."""
    depth = 0
    idx, pos = line_idx, open_idx
    args = []
    while idx < len(code):
        line = code[idx]
        while pos < len(line):
            ch = line[pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "memory_order" in "".join(args)
            args.append(ch)
            pos += 1
        args.append(" ")
        idx += 1
        pos = 0
    return "memory_order" in "".join(args)


def lint_file(path: str, rel: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    allows = collect_allows(lines)
    code = strip_code(lines)
    exempt = EXEMPT.get(rel, set())

    def allowed(lineno: int, rule: str) -> bool:
        if rule in allows.get(lineno, set()):
            return True
        # Walk up through the contiguous comment block above the
        # finding, so a multi-line justification can carry the tag.
        probe = lineno - 1
        while probe >= 1 and lines[probe - 1].lstrip().startswith("//"):
            if rule in allows.get(probe, set()):
                return True
            probe -= 1
        return False

    findings: list[Finding] = []

    def add(lineno: int, rule: str) -> None:
        if rule in exempt or allowed(lineno, rule):
            return
        findings.append(Finding(rel, lineno, rule, lines[lineno - 1]))

    unordered = unordered_names(code) | sibling_unordered_names(path)
    for lineno, line in enumerate(code, start=1):
        if UNORDERED_DECL_RE.search(line):
            add(lineno, "unordered-container")
        for match in RANGE_FOR_RE.finditer(line):
            if match.group(1) in unordered:
                add(lineno, "unordered-iteration")
        for match in ITER_CALL_RE.finditer(line):
            if match.group(1) in unordered:
                add(lineno, "unordered-iteration")
        if RAW_RANDOM_RE.search(line):
            add(lineno, "raw-random")
        if WALL_CLOCK_RE.search(line):
            add(lineno, "wall-clock")
        if POINTER_KEY_RE.search(line):
            add(lineno, "pointer-keyed-container")
        if rel.startswith(os.path.join("src", "noc")):
            for match in ATOMIC_RMW_RE.finditer(line):
                if not rmw_has_order(code, lineno - 1, match.end() - 1):
                    add(lineno, "atomic-rmw-order")
    return findings


def scan(root: str, paths: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            findings.extend(lint_file(full, base))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    continue
                fpath = os.path.join(dirpath, name)
                findings.extend(
                    lint_file(fpath, os.path.relpath(fpath, root)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def counts_of(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        key = "%s:%s" % (f.path, f.rule)
        counts[key] = counts.get(key, 0) + 1
    return counts


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="drlint", add_help=True)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the "
                             "repository root (default: src tools)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of this "
                             "script)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: "
                             "tools/drlint_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current counts")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-24s %s" % (rule, RULES[rule]))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "tools"]
    baseline_path = args.baseline or os.path.join(
        root, "tools", "drlint_baseline.json")

    findings = scan(root, paths)
    counts = counts_of(findings)

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(counts, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("drlint: baseline updated (%d findings in %d buckets)"
              % (len(findings), len(counts)))
        return 0

    baseline: dict[str, int] = {}
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)

    failed = False
    for key in sorted(counts):
        extra = counts[key] - baseline.get(key, 0)
        if extra <= 0:
            continue
        failed = True
        path, rule = key.rsplit(":", 1)
        print("drlint: %d new finding(s) of [%s] in %s:"
              % (extra, rule, path))
        for f in findings:
            if f.path == path and f.rule == rule:
                print("  " + str(f))
    stale = {k: v for k, v in baseline.items()
             if counts.get(k, 0) < v}
    if stale:
        print("drlint: note: %d baseline bucket(s) now below their "
              "recorded count; run --update-baseline to ratchet down"
              % len(stale))

    if failed:
        print("drlint: FAIL (%d findings, baseline allows %d)"
              % (len(findings), sum(baseline.values())))
        return 1
    print("drlint: clean (%d findings, all within baseline)"
          % len(findings))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

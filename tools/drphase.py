#!/usr/bin/env python3
"""drphase - phase/domain ownership checker for the parallel tick engine.

The deterministic parallel tick engine (DESIGN.md §11/§12) splits every
cycle into parallel compute phases and serial commit sections. Its
bit-identical guarantee rests on an ownership discipline that the
DR_* macros of src/common/ownership.hpp declare in the source:

  DR_DOMAIN_OWNED   state written in parallel phases only by its owning
                    domain's worker (serial code may also touch it)
  DR_SHARED_SPSC    single-producer/single-consumer staging crossed only
                    at the phase barrier
  DR_SERIAL_ONLY    state written only from serial sections; the
                    parallel phases may read it (frozen while they run)
  DR_COMPUTE_PHASE  method confined to a parallel phase
  DR_ENDPOINT_PHASE method confined to the endpoint compute phase
                    (DESIGN.md §13) — checked exactly like a compute
                    phase: endpoints may touch only domain-owned state
  DR_COMMIT_PHASE   method confined to serial sections (a body-level
                    DR_PHASE_ASSERT_COMMIT() classifies the same way)

This pass walks the annotated sources and enforces the discipline:

  compute-writes-serial       a compute-phase method writes (or calls a
                              mutating method on) DR_SERIAL_ONLY state
  compute-writes-unannotated  a compute-phase method writes a member
                              with no ownership classification
  compute-calls-commit        a compute-phase method calls a method
                              classified commit-phase
  unannotated-state           a mutable member of a tick-reachable class
                              carries no classification (and no exempt
                              type: atomics, mutexes, threads, the
                              barrier — their synchronization is their
                              own)
  cross-domain-commit         a compute-phase method resolves producer/
                              consumer domains and mutates another
                              domain's router directly without staging
                              into a DR_SHARED_SPSC buffer
  spsc-drain-order            an SPSC staging consumer drains producers
                              in descending order (the determinism
                              contract requires ascending)
  missing-stamp-check         a compute-phase method that takes or binds
                              a stamped structure (Ni&/Domain&) never
                              calls DR_STAMP_WRITE on one
  serial-call-in-compute      a compute/endpoint-phase method invokes a
                              DR_SERIAL_ONLY callable member (e.g. the
                              cross-core locality oracle) mid-phase;
                              stage the query and resolve it in the
                              serial merge instead

Works without libclang: the default pass is token-level, built on the
same stripped-source scanning as drlint. When ``--compile-commands``
points at a CMake-exported compile_commands.json *and* python's
clang.cindex bindings can load, an additional AST pass re-resolves
member writes inside compute-phase methods precisely (through aliases
and overloads) and reports anything the token pass missed; without the
bindings the option degrades to the token pass with a note.

Suppression: ``// drphase-allow(<rule>)`` on the offending line or in
the contiguous ``//`` comment block directly above it, exactly like
drlint-allow.

A checked-in JSON baseline (tools/drphase_baseline.json) records
accepted per-file/per-rule counts — kept at zero violations; the pass
fails when a count exceeds the baseline.

Usage:
  drphase.py [--baseline FILE] [--update-baseline] [--list-rules]
             [--compile-commands FILE] [paths]

Exits 0 when clean against the baseline, 1 on new findings, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

RULES = {
    "compute-writes-serial":
        "compute-phase method writes DR_SERIAL_ONLY state",
    "compute-writes-unannotated":
        "compute-phase method writes a member with no ownership "
        "classification",
    "compute-calls-commit":
        "compute-phase method calls a commit-phase method",
    "unannotated-state":
        "mutable member of a tick-reachable class has no ownership "
        "classification",
    "cross-domain-commit":
        "compute-phase method mutates a foreign domain's router without "
        "SPSC staging",
    "spsc-drain-order":
        "SPSC staging drained in descending producer order",
    "missing-stamp-check":
        "compute-phase method binds a stamped structure but never calls "
        "DR_STAMP_WRITE",
    "serial-call-in-compute":
        "compute/endpoint-phase method invokes a DR_SERIAL_ONLY callable "
        "member mid-phase instead of staging the query",
}

# Classes whose mutable members are reachable from Network::tick() (or
# pre-annotated for the ROADMAP's endpoint partitioning) and therefore
# must carry an ownership classification. Nested structs inherit a
# class-level DR_DOMAIN_OWNED from their enclosing class.
COVERED_CLASSES = {
    "Network", "Router", "PacketPool", "SpinBarrier", "ActiveSet",
    "Ni", "Domain",
    "SmCore", "CpuNode", "MemNode", "EndpointEngine",
    "GpuCoherence", "MesiDirectory", "CtaScheduler",
    "PrivateL1", "SharedL1", "DynEbL1", "DramChannel",
}

# Member types that synchronize themselves (or are immutable): no
# phase classification required.
TYPE_EXEMPT_RE = re.compile(
    r"std\s*::\s*(?:atomic|mutex|condition_variable|thread|function)\b"
    r"|\bSpinBarrier\b")

ANNOTATIONS = ("DR_DOMAIN_OWNED", "DR_SHARED_SPSC", "DR_SERIAL_ONLY")
ANNOTATION_CLASS = {
    "DR_DOMAIN_OWNED": "domain",
    "DR_SHARED_SPSC": "spsc",
    "DR_SERIAL_ONLY": "serial",
}
METHOD_PHASES = ("DR_COMPUTE_PHASE", "DR_ENDPOINT_PHASE",
                 "DR_COMMIT_PHASE", "DR_PHASE_UNCHECKED",
                 "DR_PHASE_READ")

# Method names that mutate their object. Token-level stand-in for
# const-ness: calling one of these on serial/unannotated state from a
# compute method is a write.
MUTATING_CALLS = {
    "push_back", "emplace_back", "push_front", "pop_back", "pop_front",
    "clear", "insert", "erase", "resize", "reserve", "reset", "sample",
    "add", "release", "alloc", "acceptFlit", "acceptCredit", "tick",
    "wakeEjectSpace", "sweep", "setDomain", "resetStats", "onDelivered",
    "flush", "access", "evict", "next",
}

ALLOW_RE = re.compile(r"drphase-allow\(([a-z-]+)\)")
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
              "<<=", ">>=")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
CPP_DEF_RE = re.compile(r"^([A-Za-z_]\w*)::(~?\w+)\s*\(")
DESCENDING_FOR_RE = re.compile(
    r"for\s*\([^;]*;\s*\w+\s*>=?\s*0\s*;\s*(?:--\s*\w+|\w+\s*--)")
DESCENDING_IDX_RE = re.compile(r"\w+\s*-\s*1\s*-\s*\w+")


class Finding:
    def __init__(self, path: str, line: int, rule: str, text: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.text = text

    def __str__(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.text.strip())


def strip_code(lines: list[str]) -> list[str]:
    """Lines with comments and string/char literals blanked (drlint's
    state machine, so block comments and quoted braces are handled)."""
    out = []
    in_block = False
    for raw in lines:
        res = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                res.append(quote + quote)
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    for lineno, raw in enumerate(lines, start=1):
        for match in ALLOW_RE.finditer(raw):
            allows.setdefault(lineno, set()).add(match.group(1))
    return allows


def strip_templates(text: str) -> str:
    """Blank the contents of angle brackets so parentheses inside
    template arguments (std::function<bool(int, Addr)>) don't read as
    function declarations."""
    res = []
    depth = 0
    for ch in text:
        if ch == "<":
            depth += 1
            res.append(" ")
        elif ch == ">":
            depth = max(0, depth - 1)
            res.append(" ")
        elif depth == 0:
            res.append(ch)
        else:
            res.append(" ")
    return "".join(res)


class ClassModel:
    def __init__(self, name: str, class_annotation: str | None):
        self.name = name
        self.class_annotation = class_annotation  # "domain"/"spsc"/...
        self.members: dict[str, str] = {}  # name -> classification
        self.member_lines: dict[str, tuple[str, int]] = {}
        self.member_types: dict[str, str] = {}
        self.methods: dict[str, str] = {}  # name -> phase
        self.has_stamp = False

    def classification(self, member: str) -> str | None:
        cls = self.members.get(member)
        if cls in ("domain", "spsc", "serial"):
            return cls
        if member in self.members and self.class_annotation:
            return self.class_annotation
        return None


CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+((?:DR_\w+\s+)*)(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)")
ACCESS_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using|typedef|friend|static|enum|return|if|for|while|"
    r"switch|case|default|break|continue|template|virtual|explicit|"
    r"class|struct|union|#|namespace|DR_DOMAIN_STAMP)\b")


def parse_classes(code: list[str], rel: str,
                  models: dict[str, ClassModel]) -> None:
    """Populate per-class member/method models from stripped code.

    Tracks brace depth with a stack of open class scopes; members are
    the declarations at a class's immediate depth, methods are names
    followed by a parameter list, with trailing DR_* phase tokens.
    """
    depth = 0
    # stack of (model, member_depth)
    stack: list[tuple[ClassModel, int]] = []
    pending: ClassModel | None = None
    decl = ""  # accumulating member/method declaration text
    decl_line = 0

    def flush_decl() -> None:
        nonlocal decl
        text, lineno = decl.strip(), decl_line
        decl = ""
        if not text or not stack:
            return
        model, _ = stack[-1]
        if "DR_DOMAIN_STAMP" in text:
            model.has_stamp = True
            return
        if ACCESS_RE.match(text) or MEMBER_SKIP_RE.match(text):
            return
        flat = strip_templates(text)
        if "(" in flat:
            # Method declaration (or inline definition head): record the
            # phase from trailing DR_* tokens.
            m = re.search(r"([A-Za-z_]\w*|operator\s*\[\s*\])\s*\(", flat)
            if not m:
                return
            name = m.group(1).replace(" ", "")
            phase = None
            close = flat.find(")", m.end())
            tail = flat[close + 1:] if close >= 0 else ""
            for tok in METHOD_PHASES:
                if re.search(r"\b%s\b" % tok, tail) or \
                        re.search(r"\b%s\b" % tok, text[len(flat):] if
                                  len(text) > len(flat) else ""):
                    phase = tok
                    break
            if phase in ("DR_COMPUTE_PHASE", "DR_ENDPOINT_PHASE"):
                # Endpoint-phase methods run inside the parallel
                # endpoint compute phase and obey compute rules.
                model.methods[name] = "compute"
            elif phase == "DR_COMMIT_PHASE":
                model.methods[name] = "commit"
            elif phase == "DR_PHASE_UNCHECKED":
                # Unchecked wins over compute for the same declaration.
                model.methods[name] = "unchecked"
            elif phase == "DR_PHASE_READ":
                model.methods[name] = "read"
            if phase in ("DR_COMPUTE_PHASE", "DR_ENDPOINT_PHASE") and \
                    "DR_PHASE_UNCHECKED" in text:
                model.methods[name] = "unchecked"
            return
        # Member declaration: "<type tokens> name [annotation] [= init];"
        body = text.rstrip(";").strip()
        if not body:
            return
        annotation = None
        for tok in ANNOTATIONS:
            if re.search(r"\b%s\b" % tok, body):
                annotation = ANNOTATION_CLASS[tok]
                body = re.sub(r"\b%s\b" % tok, " ", body)
        # Drop any initializer.
        body = re.split(r"(?<![=!<>+\-*/%&|^])=(?!=)", body, 1)[0]
        body = re.sub(r"\{[^{}]*\}\s*$", " ", body).strip()
        body = re.sub(r"\[[^\]]*\]\s*$", " ", body).strip()  # queue[2]
        idents = IDENT_RE.findall(strip_templates(body))
        if len(idents) < 2:
            return  # not "type name"
        name = idents[-1]
        type_text = body[:body.rfind(name)]
        model.members[name] = annotation or "none"
        model.member_lines[name] = (rel, lineno)
        model.member_types[name] = type_text.strip()

    for lineno, line in enumerate(code, start=1):
        if line.lstrip().startswith("#"):
            continue  # preprocessor conditionals inside class bodies
        # Start a class scope when "class/struct Name ... {" appears
        # (but not an enum class, whose body holds enumerators).
        if pending is None:
            m = CLASS_HEAD_RE.search(line)
            if m and not re.search(r"\benum\s+$",
                                   line[:m.start() + 1]):
                anns = m.group(1) or ""
                annotation = None
                for tok in ANNOTATIONS:
                    if tok in anns:
                        annotation = ANNOTATION_CLASS[tok]
                name = m.group(2)
                pending = models.setdefault(name,
                                            ClassModel(name, annotation))
                if annotation and pending.class_annotation is None:
                    pending.class_annotation = annotation
        for ch in line:
            at_member_depth = bool(stack) and stack[-1][1] == depth
            if ch == "{":
                if pending is not None:
                    depth += 1
                    stack.append((pending, depth))
                    pending = None
                    decl = ""
                    continue
                if at_member_depth and "(" in strip_templates(decl):
                    flush_decl()  # inline method head ends here
                depth += 1
            elif ch == "}":
                if at_member_depth:
                    flush_decl()
                    stack.pop()
                depth = max(0, depth - 1)
            elif ch == ";":
                # A forward declaration ("class X;") never opens a brace.
                pending = None
                if at_member_depth:
                    decl += ";"
                    flush_decl()
            elif ch == ":" and at_member_depth and \
                    decl.strip() in ("public", "private", "protected"):
                decl = ""
            elif at_member_depth:
                if not decl.strip() and not ch.isspace():
                    decl_line = lineno
                decl += ch
        decl += " "


class MethodBody:
    def __init__(self, rel: str, cls: str, name: str, start: int,
                 lines: list[str], raw: list[str]):
        self.rel = rel
        self.cls = cls
        self.name = name
        self.start = start  # 1-based line of the signature
        self.lines = lines  # stripped body lines (including signature)
        self.raw = raw
        self.text = "\n".join(lines)


def extract_cpp_methods(code: list[str], raw: list[str],
                        rel: str) -> list[MethodBody]:
    """Method definitions in house style: 'Class::name(' at line start,
    body delimited by a '{' line and a '}' line at column 0."""
    out = []
    i = 0
    n = len(code)
    while i < n:
        m = CPP_DEF_RE.match(code[i])
        if not m:
            i += 1
            continue
        cls, name = m.group(1), m.group(2)
        start = i + 1
        j = i
        while j < n and not code[j].startswith("{"):
            j += 1
        k = j
        while k < n and code[k].rstrip() != "}":
            k += 1
        out.append(MethodBody(rel, cls, name, start,
                              code[i:k + 1], raw[i:k + 1]))
        i = k + 1
    return out


def method_phase(models: dict[str, ClassModel], cls: str, name: str,
                 body_text: str) -> str:
    model = models.get(cls)
    declared = model.methods.get(name) if model else None
    if declared == "unchecked":
        return "unchecked"
    if "DR_PHASE_UNCHECKED" in body_text:
        return "unchecked"
    if declared == "compute":
        return "compute"
    if declared == "commit" or "DR_PHASE_ASSERT_COMMIT()" in body_text:
        return "commit"
    if declared == "read":
        return "read"
    return "serial"


def scan_writes(line: str, member: str) -> bool:
    """Whether `line` writes through `member` (assignment, compound
    assignment, or ++/-- on the member or a field reached from it)."""
    for m in re.finditer(r"(?<![\w.>])%s\b" % re.escape(member), line):
        pre = line[:m.start()].rstrip()
        if pre.endswith("->"):
            continue
        if pre.endswith("++") or pre.endswith("--"):
            return True
        # Walk the access chain after the member: [..], .field
        i = m.end()
        n = len(line)
        while i < n:
            if line[i] == "[":
                bal = 1
                i += 1
                while i < n and bal:
                    if line[i] == "[":
                        bal += 1
                    elif line[i] == "]":
                        bal -= 1
                    i += 1
            elif line[i] == "." and i + 1 < n and \
                    (line[i + 1].isalpha() or line[i + 1] == "_"):
                i += 1
                while i < n and (line[i].isalnum() or line[i] == "_"):
                    i += 1
            elif line[i] == " ":
                i += 1
            else:
                break
        rest = line[i:]
        if rest.startswith("++") or rest.startswith("--"):
            return True
        for op in ASSIGN_OPS:
            if rest.startswith(op):
                if op == "=" and rest.startswith("=="):
                    break
                return True
    return False


def scan_mutating_call(line: str, member: str) -> bool:
    """Whether `line` calls a known-mutating method on `member`."""
    for m in re.finditer(
            r"(?<![\w.>])%s\b\s*(?:\[[^\]]*\]\s*)?(?:->|\.)\s*"
            r"([A-Za-z_]\w*)\s*\(" % re.escape(member), line):
        if m.group(1) in MUTATING_CALLS:
            return True
    return False


def check_compute_body(body: MethodBody, models: dict[str, ClassModel],
                       add) -> None:
    model = models.get(body.cls)
    if model is None:
        return
    spsc_members = [n for n, _ in model.members.items()
                    if model.classification(n) == "spsc"]
    # DR_SERIAL_ONLY callable members (std::function callbacks like the
    # cross-core locality oracle): invoking one mid-phase reads foreign
    # state the serial merge has not yet reconciled.
    serial_callables = [
        n for n in model.members
        if model.classification(n) == "serial" and
        re.search(r"\bfunction\b",
                  strip_templates(model.member_types.get(n, "")))]

    stamped_binding = bool(
        re.search(r"\b(?:Ni|Domain)\s*&\s*\w+", body.text))
    has_stamp_write = "DR_STAMP_WRITE(" in body.text

    uses_domain_map = bool(re.search(r"\b(?:router|node)Domain_\s*\[",
                                     body.text))
    direct_router_mutation_line = None
    spsc_push = any(re.search(r"\b%s\b[^;]*push_back" % re.escape(n),
                              body.text) for n in spsc_members)

    for off, line in enumerate(body.lines):
        lineno = body.start + off
        # Writes and mutating calls on this class's members.
        for member in model.members:
            cls = model.classification(member)
            wrote = scan_writes(line, member) or \
                scan_mutating_call(line, member)
            if not wrote:
                continue
            if cls in ("domain", "spsc"):
                continue
            if cls == "serial":
                add(lineno, "compute-writes-serial", line)
            else:
                type_text = model.member_types.get(member, "")
                if TYPE_EXEMPT_RE.search(type_text):
                    continue
                add(lineno, "compute-writes-unannotated", line)
        # Direct invocation of a serial-only callable member.
        for member in serial_callables:
            if re.search(r"(?<![\w.>])%s\s*\(" % re.escape(member), line):
                add(lineno, "serial-call-in-compute", line)
        # Calls into commit-phase methods: own-class bare calls and
        # member-object calls resolved through the declared member type.
        for m in re.finditer(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(", line):
            callee = m.group(1)
            if model.methods.get(callee) == "commit":
                add(lineno, "compute-calls-commit", line)
        for m in re.finditer(
                r"(?<![\w.>])([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?"
                r"(?:->|\.)\s*([A-Za-z_]\w*)\s*\(", line):
            base, callee = m.group(1), m.group(2)
            type_text = model.member_types.get(base)
            if not type_text:
                continue
            for tname in IDENT_RE.findall(strip_templates(type_text)):
                target = models.get(tname)
                if target and target.methods.get(callee) == "commit":
                    add(lineno, "compute-calls-commit", line)
                    break
        # Direct mutation of a router owned by a resolved foreign
        # domain (the staged path is the legal alternative).
        if re.search(r"\brouters_\s*\[[^\]]*\]\s*->\s*"
                     r"(?:acceptFlit|acceptCredit)\s*\(", line):
            direct_router_mutation_line = (lineno, line)
        # Descending drain of SPSC staging.
        if spsc_members and (DESCENDING_FOR_RE.search(line) or
                             DESCENDING_IDX_RE.search(line)):
            if any(re.search(r"\b%s\b" % re.escape(n), body.text)
                   for n in spsc_members):
                add(lineno, "spsc-drain-order", line)

    if uses_domain_map and direct_router_mutation_line and not spsc_push:
        lineno, line = direct_router_mutation_line
        add(lineno, "cross-domain-commit", line)

    if stamped_binding and not has_stamp_write:
        add(body.start, "missing-stamp-check", body.lines[0])


def check_unannotated_state(models: dict[str, ClassModel], add) -> None:
    for name in sorted(COVERED_CLASSES):
        model = models.get(name)
        if model is None:
            continue
        if model.class_annotation:
            continue  # class-level annotation covers every member
        for member in sorted(model.members):
            if model.classification(member):
                continue
            type_text = model.member_types.get(member, "")
            if TYPE_EXEMPT_RE.search(type_text):
                continue
            if "&" in type_text or type_text.startswith("const "):
                continue
            rel, lineno = model.member_lines[member]
            add_path = add(rel)
            add_path(lineno, "unannotated-state",
                     "%s::%s (%s)" % (name, member, type_text.strip()))


def list_sources(root: str, paths: list[str]) -> list[tuple[str, str]]:
    out = []
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            out.append((full, base))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith((".hpp", ".cpp", ".h", ".cc")):
                    continue
                fpath = os.path.join(dirpath, fname)
                out.append((fpath, os.path.relpath(fpath, root)))
    return out


def scan(root: str, paths: list[str]) -> list[Finding]:
    sources = list_sources(root, paths)
    models: dict[str, ClassModel] = {}
    file_lines: dict[str, list[str]] = {}
    file_code: dict[str, list[str]] = {}
    for fpath, rel in sources:
        with open(fpath, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
        file_lines[rel] = lines
        file_code[rel] = strip_code(lines)
        parse_classes(file_code[rel], rel, models)

    findings: list[Finding] = []

    def adder(rel: str):
        lines = file_lines.get(rel, [])
        allows = collect_allows(lines)

        def allowed(lineno: int, rule: str) -> bool:
            if rule in allows.get(lineno, set()):
                return True
            probe = lineno - 1
            while probe >= 1 and \
                    lines[probe - 1].lstrip().startswith("//"):
                if rule in allows.get(probe, set()):
                    return True
                probe -= 1
            return False

        def add(lineno: int, rule: str, text: str) -> None:
            if allowed(lineno, rule):
                return
            findings.append(Finding(rel, lineno, rule, text))

        return add

    check_unannotated_state(models, adder)

    for fpath, rel in sources:
        add = adder(rel)
        for body in extract_cpp_methods(file_code[rel],
                                        file_lines[rel], rel):
            phase = method_phase(models, body.cls, body.name, body.text)
            if phase == "compute":
                check_compute_body(body, models, add)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def ast_augment(root: str, paths: list[str], compile_commands: str,
                findings: list[Finding]) -> bool:
    """AST-accurate member-write resolution via libclang, when the
    python bindings are importable. Re-resolves writes inside
    compute-phase methods through aliases the token pass cannot follow
    and appends anything new to `findings`. Returns whether it ran."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        print("drphase: note: clang.cindex not importable; "
              "--compile-commands degraded to the token-level pass")
        return False
    try:
        ccdir = os.path.dirname(os.path.abspath(compile_commands))
        db = cindex.CompilationDatabase.fromDirectory(ccdir)
        index = cindex.Index.create()
    except Exception as exc:  # pragma: no cover - environment-specific
        print("drphase: note: libclang unavailable (%s); token-level "
              "results stand" % exc)
        return False

    serial_members: set[str] = set()
    compute_methods: set[str] = set()
    for fpath, rel in list_sources(root, paths):
        with open(fpath, encoding="utf-8", errors="replace") as fh:
            code = strip_code(fh.read().splitlines())
        models: dict[str, ClassModel] = {}
        parse_classes(code, rel, models)
        for model in models.values():
            for member in model.members:
                if model.classification(member) == "serial":
                    serial_members.add("%s::%s" % (model.name, member))
            for name, phase in model.methods.items():
                if phase == "compute":
                    compute_methods.add("%s::%s" % (model.name, name))

    seen = {(f.path, f.line, f.rule) for f in findings}
    for cmd in db.getAllCompileCommands() or []:
        src = cmd.filename
        rel = os.path.relpath(src, root)
        if not rel.startswith("src"):
            continue
        args = [a for a in list(cmd.arguments)[1:-1]]
        try:
            tu = index.parse(src, args=args)
        except Exception:
            continue

        def qual(cursor) -> str:
            parent = cursor.semantic_parent
            pname = parent.spelling if parent is not None else ""
            return "%s::%s" % (pname, cursor.spelling)

        def walk(node, in_compute):
            kind = node.kind
            if kind == cindex.CursorKind.CXX_METHOD:
                in_compute = qual(node) in compute_methods
            if in_compute and kind in (
                    cindex.CursorKind.BINARY_OPERATOR,
                    cindex.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR,
                    cindex.CursorKind.UNARY_OPERATOR):
                for child in node.get_children():
                    if child.kind == cindex.CursorKind.MEMBER_REF_EXPR:
                        ref = child.referenced
                        if ref is not None and \
                                qual(ref) in serial_members:
                            loc = child.location
                            key = (rel, loc.line,
                                   "compute-writes-serial")
                            if key not in seen:
                                seen.add(key)
                                findings.append(Finding(
                                    rel, loc.line,
                                    "compute-writes-serial",
                                    "(AST) write to %s" %
                                    ref.spelling))
                    break  # LHS only
            for child in node.get_children():
                walk(child, in_compute)

        walk(tu.cursor, False)
    return True


def counts_of(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        key = "%s:%s" % (f.path, f.rule)
        counts[key] = counts.get(key, 0) + 1
    return counts


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="drphase", add_help=True)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the "
                             "repository root (default: src)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of this "
                             "script)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: "
                             "tools/drphase_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current counts")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the AST-accurate "
                             "libclang pass (degrades gracefully when "
                             "the bindings are missing)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-28s %s" % (rule, RULES[rule]))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src"]
    baseline_path = args.baseline or os.path.join(
        root, "tools", "drphase_baseline.json")

    findings = scan(root, paths)
    if args.compile_commands:
        ast_augment(root, paths, args.compile_commands, findings)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
    counts = counts_of(findings)

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(counts, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("drphase: baseline updated (%d findings in %d buckets)"
              % (len(findings), len(counts)))
        return 0

    baseline: dict[str, int] = {}
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)

    failed = False
    for key in sorted(counts):
        extra = counts[key] - baseline.get(key, 0)
        if extra <= 0:
            continue
        failed = True
        path, rule = key.rsplit(":", 1)
        print("drphase: %d new finding(s) of [%s] in %s:"
              % (extra, rule, path))
        for f in findings:
            if f.path == path and f.rule == rule:
                print("  " + str(f))
    stale = {k: v for k, v in baseline.items()
             if counts.get(k, 0) < v}
    if stale:
        print("drphase: note: %d baseline bucket(s) now below their "
              "recorded count; run --update-baseline to ratchet down"
              % len(stale))

    if failed:
        print("drphase: FAIL (%d findings, baseline allows %d)"
              % (len(findings), sum(baseline.values())))
        return 1
    print("drphase: clean (%d findings, all within baseline)"
          % len(findings))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

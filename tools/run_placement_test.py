#!/usr/bin/env python3
"""Self-test for run_placement.py (stdlib unittest; wired into ctest).

Two properties matter. First, shard-count independence: the ranked
report must be byte-identical whatever -j is, because a placement
recommendation that depended on scheduling would be worthless. Second,
deterministic candidate generation: the family is a pure function of
the chip shape, with in-bounds, collision-free, correctly sized tile
sets. The tests drive run_placement.main() against a stub drsim whose
metric is computed from the placement itself, with a sleep keyed to
the tile sum so completion order scrambles under -j 4.
"""

import os
import stat
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import run_placement  # noqa: E402

STUB = """#!/bin/sh
# Stub drsim: --dump-config reports a fixed chip; a run scores the
# placement deterministically from its tile sum and sleeps a little on
# even sums so completion order differs from submission order.
for arg in "$@"; do
  case "$arg" in
    --dump-config)
      echo "noc.meshWidth = 8"
      echo "noc.meshHeight = 8"
      echo "mem.numNodes = 4"
      exit 0;;
    mem.placement=*)
      placement="${arg#mem.placement=}";;
  esac
done
[ -n "$placement" ] || exit 4
sum=$(echo "$placement" | tr ',' '\\n' | awk '{s+=$1} END {print s}')
[ $((sum % 2)) -eq 0 ] && sleep 0.2
awk -v s="$sum" 'BEGIN {
  printf "{\\n  \\"sim.gpuIpc\\": %.3f,\\n", 100 / (1 + s % 17);
  printf "  \\"sim.memBlockingRate\\": %.3f\\n}\\n", (s % 7) / 10;
}'
"""


class StubSim:
    """Temp dir holding the stub drsim and report outputs."""

    def __enter__(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.drsim = os.path.join(self.tmp.name, "drsim")
        with open(self.drsim, "w", encoding="utf-8") as fh:
            fh.write(STUB)
        os.chmod(self.drsim, os.stat(self.drsim).st_mode
                 | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
        return self

    def __exit__(self, *exc):
        self.tmp.cleanup()
        return False

    def run(self, jobs, out_name):
        out = os.path.join(self.tmp.name, out_name)
        rc = run_placement.main(["-j", str(jobs), "--drsim", self.drsim,
                                 "-o", out])
        data = b""
        if os.path.exists(out):
            with open(out, "rb") as fh:
                data = fh.read()
        return rc, data


class CandidateFamilyTest(unittest.TestCase):
    def test_candidates_are_pure_and_well_formed(self):
        first = run_placement.candidates(16, 16, 16)
        again = run_placement.candidates(16, 16, 16)
        self.assertEqual(first, again)
        self.assertGreaterEqual(len(first), 8)
        seen = set()
        for name, tiles in first:
            self.assertEqual(len(tiles), 16, name)
            self.assertEqual(len(set(tiles)), 16, name)
            self.assertTrue(all(0 <= t < 256 for t in tiles), name)
            self.assertNotIn(tuple(tiles), seen, name)
            seen.add(tuple(tiles))

    def test_colliding_shapes_are_dropped(self):
        # 12 memory nodes cannot spread along one row of an 8-wide
        # chip; the row/col shapes must be dropped, not emitted with
        # duplicate tiles.
        family = dict(run_placement.candidates(8, 8, 12))
        self.assertNotIn("row-top", family)
        for name, tiles in family.items():
            self.assertEqual(len(set(tiles)), 12, name)


class ShardIndependenceTest(unittest.TestCase):
    def test_report_bytes_identical_across_jobs(self):
        with StubSim() as sim:
            rc1, serial = sim.run(1, "report_j1.txt")
            rc4, sharded = sim.run(4, "report_j4.txt")
        self.assertEqual(rc1, 0)
        self.assertEqual(rc4, 0)
        self.assertGreater(len(serial), 0)
        self.assertEqual(serial, sharded,
                         "ranked report depends on shard count")

    def test_report_is_ranked_by_descending_ipc(self):
        with StubSim() as sim:
            rc, data = sim.run(4, "report.txt")
        self.assertEqual(rc, 0)
        rows = data.decode().splitlines()[2:]
        ipcs = [float(row.split()[2]) for row in rows]
        self.assertGreater(len(ipcs), 2)
        self.assertEqual(ipcs, sorted(ipcs, reverse=True))


class FailurePropagationTest(unittest.TestCase):
    def test_failing_run_fails_the_search(self):
        with StubSim() as sim:
            # Break the stub after --dump-config parsing: a run with no
            # placement exits 4, which must fail the whole search.
            with open(sim.drsim, "a", encoding="utf-8") as fh:
                fh.write("exit 4\n")
            rc, data = sim.run(2, "report.txt")
        self.assertEqual(rc, 1)
        self.assertEqual(data, b"")


if __name__ == "__main__":
    unittest.main(verbosity=2)

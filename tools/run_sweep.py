#!/usr/bin/env python3
"""Sharded bench sweep runner.

Runs the paper's bench binaries as concurrent processes with a bounded
job pool, cutting full EXPERIMENTS.md regeneration wall-clock by
roughly the machine's core count. Each bench is a self-contained,
deterministically-seeded simulation, so process-level sharding cannot
change any number — only the wall clock.

Usage:
    tools/run_sweep.py [-j JOBS] [-b BUILD_DIR] [-o OUT_DIR] [bench ...]

With no bench names, every binary under BUILD_DIR/bench is swept except
`perf_kernel` (a wall-clock measurement: running it while the sweep
loads every core would corrupt its cycles/sec figures — run it alone
via tools/run_perf_kernel.sh). Per-bench stdout+stderr goes to
OUT_DIR/<bench>.txt; after all benches finish, the per-bench logs are
concatenated in deterministic (alphabetical) order into
OUT_DIR/bench_output.txt, byte-identical to a `for b in build/bench/*`
serial sweep's tee output modulo interleaving.

Environment (DR_BENCH_CYCLES, DR_BENCH_CPUS, DR_BENCH_THREADS, ...) is
passed through to every bench. Exit status is non-zero if any bench
fails, with the failing benches listed.
"""

import argparse
import os
import subprocess
import sys
import threading
import time

EXCLUDED_BY_DEFAULT = {"perf_kernel"}


def discover(build_dir):
    bench_dir = os.path.join(build_dir, "bench")
    if not os.path.isdir(bench_dir):
        sys.exit(f"run_sweep: {bench_dir} not found (build the benches)")
    names = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if (os.path.isfile(path) and os.access(path, os.X_OK)
                and not name.startswith(".")
                and not name.endswith((".cmake", ".txt"))):
            names.append(name)
    return names


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run bench binaries concurrently with a bounded pool")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="max concurrent benches (default: host cores)")
    parser.add_argument("-b", "--build-dir", default="build",
                        help="build tree containing bench/ (default: build)")
    parser.add_argument("-o", "--out-dir", default="sweep_output",
                        help="per-bench log directory (default: sweep_output)")
    parser.add_argument("benches", nargs="*",
                        help="bench names to run (default: all but "
                             + ", ".join(sorted(EXCLUDED_BY_DEFAULT)))
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    available = discover(args.build_dir)
    if args.benches:
        unknown = [b for b in args.benches if b not in available]
        if unknown:
            sys.exit(f"run_sweep: unknown benches {unknown}; "
                     f"available: {available}")
        selected = list(args.benches)
    else:
        selected = [b for b in available if b not in EXCLUDED_BY_DEFAULT]
    if not selected:
        sys.exit("run_sweep: nothing to run")

    os.makedirs(args.out_dir, exist_ok=True)

    pool = threading.Semaphore(args.jobs)
    lock = threading.Lock()
    failures = []
    timings = {}

    def run_one(name):
        log_path = os.path.join(args.out_dir, name + ".txt")
        binary = os.path.join(args.build_dir, "bench", name)
        start = time.monotonic()
        with open(log_path, "w") as log:
            proc = subprocess.run([binary], stdout=log,
                                  stderr=subprocess.STDOUT)
        elapsed = time.monotonic() - start
        with lock:
            timings[name] = elapsed
            status = "ok" if proc.returncode == 0 else (
                f"FAILED (exit {proc.returncode})")
            if proc.returncode != 0:
                failures.append(name)
            done = len(timings)
            print(f"run_sweep: [{done}/{len(selected)}] {name}: {status} "
                  f"({elapsed:.1f}s)", flush=True)
        pool.release()

    sweep_start = time.monotonic()
    print(f"run_sweep: {len(selected)} benches, {args.jobs} concurrent, "
          f"logs in {args.out_dir}/", flush=True)
    threads = []
    for name in selected:
        pool.acquire()
        t = threading.Thread(target=run_one, args=(name,))
        t.start()
        threads.append(t)
    for t in threads:
        t.join()

    # Deterministic combined log: alphabetical, independent of the
    # completion order above.
    combined = os.path.join(args.out_dir, "bench_output.txt")
    with open(combined, "w") as out:
        for name in sorted(selected):
            with open(os.path.join(args.out_dir, name + ".txt")) as log:
                out.write(log.read())
    total = time.monotonic() - sweep_start
    serial = sum(timings.values())
    print(f"run_sweep: wall {total:.1f}s for {serial:.1f}s of bench time "
          f"({serial / total if total > 0 else 1:.1f}x), "
          f"combined log: {combined}")

    if failures:
        print(f"run_sweep: FAILED: {sorted(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Self-test for drlint.py (stdlib unittest; wired into ctest)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import drlint  # noqa: E402


def rules_in(findings):
    return sorted({f.rule for f in findings})


class StripCodeTest(unittest.TestCase):
    def test_line_comment_removed(self):
        self.assertEqual(drlint.strip_code(["int x; // rand()"]),
                         ["int x; "])

    def test_block_comment_spans_lines(self):
        code = drlint.strip_code(["a /* rand()", "still comment", "*/ b"])
        self.assertEqual(code, ["a ", "", " b"])

    def test_string_literal_blanked(self):
        code = drlint.strip_code(['call("rand()");'])
        self.assertEqual(code, ['call("");'])

    def test_quote_inside_comment_ignored(self):
        code = drlint.strip_code(["x; // don't crash", "y;"])
        self.assertEqual(code, ["x; ", "y;"])


class LintDirectory:
    """Context manager: a temp dir linted as a repository root."""

    def __init__(self, files):
        self.files = files

    def __enter__(self):
        self.tmp = tempfile.TemporaryDirectory()
        for rel, content in self.files.items():
            path = os.path.join(self.tmp.name, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
        return drlint.scan(self.tmp.name, ["src"])

    def __exit__(self, *exc):
        self.tmp.cleanup()
        return False


class RuleTest(unittest.TestCase):
    def test_unordered_container_flagged(self):
        with LintDirectory({
            "src/a.hpp": "std::unordered_map<int, int> m_;\n",
        }) as findings:
            self.assertEqual(rules_in(findings), ["unordered-container"])

    def test_unordered_iteration_flagged(self):
        src = ("// drlint-allow(unordered-container)\n"
               "std::unordered_set<int> s_;\n"
               "void f() { for (int v : s_) use(v); }\n"
               "void g() { std::sort(s_.begin(), s_.end()); }\n")
        with LintDirectory({"src/a.hpp": src}) as findings:
            self.assertEqual(rules_in(findings), ["unordered-iteration"])
            self.assertEqual(len(findings), 2)

    def test_iteration_found_via_sibling_header(self):
        hdr = ("// drlint-allow(unordered-container)\n"
               "std::unordered_map<int, int> map_;\n")
        src = ("#include \"a.hpp\"\n"
               "void f() { for (auto &kv : map_) use(kv); }\n")
        with LintDirectory({"src/a.hpp": hdr,
                            "src/a.cpp": src}) as findings:
            self.assertEqual(rules_in(findings), ["unordered-iteration"])

    def test_find_end_comparison_not_iteration(self):
        src = ("// drlint-allow(unordered-container)\n"
               "std::unordered_map<int, int> m_;\n"
               "bool f() { return m_.find(3) != m_.end(); }\n")
        with LintDirectory({"src/a.hpp": src}) as findings:
            self.assertEqual(findings, [])

    def test_raw_random_flagged(self):
        with LintDirectory({
            "src/a.cpp": "int x = rand();\nstd::mt19937 gen;\n",
        }) as findings:
            self.assertEqual(rules_in(findings), ["raw-random"])
            self.assertEqual(len(findings), 2)

    def test_rng_wrapper_exempt(self):
        rel = os.path.join("src", "common", "rng.hpp")
        with LintDirectory({
            rel: "std::mt19937 seed_expander;\n",
        }) as findings:
            self.assertEqual(findings, [])

    def test_wall_clock_flagged(self):
        with LintDirectory({
            "src/a.cpp":
                "auto t = std::chrono::steady_clock::now();\n",
        }) as findings:
            self.assertEqual(rules_in(findings), ["wall-clock"])

    def test_pointer_keyed_container_flagged(self):
        with LintDirectory({
            "src/a.hpp": "std::map<Node *, int> order_;\n",
        }) as findings:
            self.assertEqual(rules_in(findings),
                             ["pointer-keyed-container"])

    def test_random_in_comment_or_string_ignored(self):
        with LintDirectory({
            "src/a.cpp": "// rand() here\nlog(\"rand()\");\n",
        }) as findings:
            self.assertEqual(findings, [])

    def test_default_seqcst_rmw_in_noc_flagged(self):
        with LintDirectory({
            "src/noc/a.cpp": "epoch_.fetch_add(1);\n",
        }) as findings:
            self.assertEqual(rules_in(findings), ["atomic-rmw-order"])

    def test_explicit_order_rmw_passes(self):
        with LintDirectory({
            "src/noc/a.cpp":
                "epoch_.fetch_add(1, std::memory_order_release);\n"
                "ok_.compare_exchange_strong(\n"
                "    e, d, std::memory_order_acq_rel,\n"
                "    std::memory_order_acquire);\n",
        }) as findings:
            self.assertEqual(findings, [])

    def test_wrapped_rmw_arguments_scanned_across_lines(self):
        with LintDirectory({
            "src/noc/a.cpp": "gen_.exchange(\n    next);\n",
        }) as findings:
            self.assertEqual(rules_in(findings), ["atomic-rmw-order"])

    def test_rmw_rule_scoped_to_noc(self):
        with LintDirectory({
            "src/mem/a.cpp": "epoch_.fetch_add(1);\n",
        }) as findings:
            self.assertEqual(findings, [])


class SuppressionTest(unittest.TestCase):
    def test_same_line_allow(self):
        with LintDirectory({
            "src/a.hpp": "std::unordered_map<int, int> m_;  "
                         "// drlint-allow(unordered-container)\n",
        }) as findings:
            self.assertEqual(findings, [])

    def test_comment_block_above_allows(self):
        src = ("// drlint-allow(unordered-container): lookup only,\n"
               "// with a longer justification on a second line.\n"
               "std::unordered_map<int, int> m_;\n")
        with LintDirectory({"src/a.hpp": src}) as findings:
            self.assertEqual(findings, [])

    def test_wrong_rule_does_not_suppress(self):
        src = ("// drlint-allow(raw-random)\n"
               "std::unordered_map<int, int> m_;\n")
        with LintDirectory({"src/a.hpp": src}) as findings:
            self.assertEqual(rules_in(findings), ["unordered-container"])

    def test_allow_does_not_leak_past_code_line(self):
        src = ("// drlint-allow(unordered-container)\n"
               "int unrelated;\n"
               "std::unordered_map<int, int> m_;\n")
        with LintDirectory({"src/a.hpp": src}) as findings:
            self.assertEqual(rules_in(findings), ["unordered-container"])


class BaselineTest(unittest.TestCase):
    def run_main(self, files, args):
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(content)
            return drlint.main(["--root", tmp, "src"] + args)

    def test_clean_tree_passes_without_baseline(self):
        self.assertEqual(self.run_main({"src/a.cpp": "int x;\n"}, []), 0)

    def test_new_finding_fails(self):
        self.assertEqual(
            self.run_main({"src/a.cpp": "int x = rand();\n"}, []), 1)

    def test_baselined_finding_passes(self):
        baseline = '{"src/a.cpp:raw-random": 1}\n'
        files = {"src/a.cpp": "int x = rand();\n",
                 "baseline.json": baseline}
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(content)
            rc = drlint.main(["--root", tmp, "--baseline",
                              os.path.join(tmp, "baseline.json"), "src"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()

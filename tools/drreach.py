#!/usr/bin/env python3
"""drreach: whole-program phase-reachability and domain-confinement
analysis for the deterministic parallel tick engine (DESIGN.md §14).

tools/drphase.py checks the ownership discipline file-by-file: a method
annotated DR_COMPUTE_PHASE/DR_ENDPOINT_PHASE must not write serial or
unannotated state. That leaves a hole the width of a function call — a
compute-phase body calling an *unannotated* helper (possibly in another
translation unit, possibly through a virtual base) escapes every rule,
because the helper's body is classified "serial" and never checked.

drreach closes the hole by working on the whole program at once:

 1. Parse all of src/ with the same stripped-source scanner drlint and
    drphase share, extending drphase's per-class model with the class
    hierarchy, every method declaration (including `virtual` ones,
    which drphase's member scan deliberately skips), inline method
    bodies, and return types for getter-chain resolution.
 2. Seed the reachable set at the parallel tick entry points: every
    body whose declared phase is compute/endpoint (Network::tick's
    compute phases and the EndpointEngine endpoint phase reach exactly
    the annotated surface, which drphase already polices).
 3. Propagate transitively: an unannotated method called from a
    reachable body is *inferred* compute-phase, and its writes are
    re-judged under the drphase ownership rules — in the receiver
    context of the call chain (a callee reached through an owned
    by-value member mutates state the calling domain owns; one reached
    through a reference/pointer member mutates foreign state).
 4. Emit a per-L1Organizer-implementation confinement verdict: whether
    every member mutated on the per-core entry paths (load/write/fill/
    contains/tick) is indexed solely by the calling core, staging
    everything else for the serial merge — and fail if a class's
    concurrentSafe() return contradicts the verdict, in either
    direction.

Rules (suppress a finding with `// drreach-allow(<rule>)` on the
offending line or the contiguous comment block above it; a suppression
on a call line kills the whole taint chain through that call):

  phase-escape                  a method reachable from a parallel
                                phase writes serial/unannotated state
                                or calls a commit-phase method
  virtual-dispatch-unclassified a phase-reachable virtual call has an
                                overrider with no declared phase and no
                                analyzable body
  confinement-mismatch          an L1Organizer implementation's
                                concurrentSafe() contradicts the
                                computed confinement verdict

Exit status: 0 clean (all findings within baseline), 1 new findings.
The baseline (tools/drreach_baseline.json) is a zero-violation ratchet:
src/ must stay clean.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import drphase  # noqa: E402  (shared scanner + ownership rules)

RULES = {
    "phase-escape":
        "method reachable from a parallel phase writes serial or "
        "unannotated state (or calls a commit-phase method)",
    "virtual-dispatch-unclassified":
        "phase-reachable virtual call whose overriders are not all "
        "classified or analyzable",
    "confinement-mismatch":
        "concurrentSafe() contradicts the computed per-core "
        "confinement verdict",
}

ALLOW_RE = re.compile(r"drreach-allow\(([a-z-]+)\)")

# L1Organizer per-core entry paths whose writes the confinement verdict
# judges (ISSUE: everything a lookup mutates must be banked by core).
ENTRY_METHODS = ("load", "write", "fill", "contains", "tick")

# Declaration keywords stripped when recovering a return type.
DECL_KEYWORDS_RE = re.compile(
    r"\b(?:virtual|static|inline|explicit|constexpr|mutable|friend|"
    r"typename|override|final)\b")

METHOD_NAME_RE = re.compile(r"([A-Za-z_]\w*|operator\s*\[\s*\])\s*\(")

# Call-site patterns inside a stripped body line.
MEMBER_CALL_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*"
    r"(?:->|\.)\s*([A-Za-z_]\w*)\s*\(")
GETTER_CALL_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*\(\s*\)\s*\.\s*([A-Za-z_]\w*)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "static_cast",
    "const_cast", "reinterpret_cast", "dynamic_cast", "assert",
    "panic", "fatal", "new", "delete", "catch", "defined",
}


class Decl:
    """One method declaration inside a class (overloads merged)."""

    def __init__(self, name: str):
        self.name = name
        self.virtual = False
        self.pure = False
        self.phase: str | None = None  # compute/commit/read/unchecked
        self.ret = ""
        self.rel = ""
        self.line = 0
        # Bodies: list of (rel, [(lineno, stripped line), ...]).
        self.bodies: list[tuple[str, list[tuple[int, str]]]] = []


class XClass:
    """Hierarchy-aware extension of drphase.ClassModel."""

    def __init__(self, name: str):
        self.name = name
        self.bases: list[str] = []
        self.decls: dict[str, Decl] = {}
        self.concurrent_safe: bool | None = None
        self.concurrent_safe_line: tuple[str, int] | None = None


class Program:
    def __init__(self):
        self.models: dict[str, drphase.ClassModel] = {}
        self.classes: dict[str, XClass] = {}
        self.subclasses: dict[str, set[str]] = {}
        self.file_lines: dict[str, list[str]] = {}
        self.allows: dict[str, dict[int, set[str]]] = {}

    # -- hierarchy helpers ------------------------------------------------

    def ancestors(self, name: str) -> list[str]:
        out, work = [], [name]
        while work:
            cur = work.pop()
            xc = self.classes.get(cur)
            if not xc:
                continue
            for base in xc.bases:
                if base not in out:
                    out.append(base)
                    work.append(base)
        return out

    def family(self, name: str) -> list[str]:
        """`name` plus every transitive subclass."""
        out, work = [name], [name]
        while work:
            cur = work.pop()
            for sub in sorted(self.subclasses.get(cur, ())):
                if sub not in out:
                    out.append(sub)
                    work.append(sub)
        return out

    def find_decl(self, cls: str, name: str) -> tuple[str, Decl] | None:
        """Resolve `name` in `cls` or the nearest ancestor declaring it."""
        xc = self.classes.get(cls)
        if xc and name in xc.decls:
            return cls, xc.decls[name]
        for anc in self.ancestors(cls):
            axc = self.classes.get(anc)
            if axc and name in axc.decls:
                return anc, axc.decls[name]
        return None

    def declared_phase(self, cls: str, name: str) -> str | None:
        """Phase of a method, inheriting the base declaration's phase
        when an override does not restate it."""
        xc = self.classes.get(cls)
        if xc and name in xc.decls and xc.decls[name].phase:
            return xc.decls[name].phase
        for anc in self.ancestors(cls):
            axc = self.classes.get(anc)
            if axc and name in axc.decls and axc.decls[name].phase:
                return axc.decls[name].phase
        return None

    def is_virtual(self, cls: str, name: str) -> bool:
        xc = self.classes.get(cls)
        if xc and name in xc.decls and xc.decls[name].virtual:
            return True
        for anc in self.ancestors(cls):
            axc = self.classes.get(anc)
            if axc and name in axc.decls and axc.decls[name].virtual:
                return True
        return False

    def member_type(self, cls: str, member: str) -> str | None:
        model = self.models.get(cls)
        if model and member in model.member_types:
            return model.member_types[member]
        for anc in self.ancestors(cls):
            amodel = self.models.get(anc)
            if amodel and member in amodel.member_types:
                return amodel.member_types[member]
        return None

    def member_class(self, cls: str, member: str) -> str | None:
        model = self.models.get(cls)
        if model and member in model.members:
            return model.classification(member)
        for anc in self.ancestors(cls):
            amodel = self.models.get(anc)
            if amodel and member in amodel.members:
                return amodel.classification(member)
        return None

    def allowed(self, rel: str, lineno: int, rule: str) -> bool:
        """drphase-style suppression: the line itself or the contiguous
        //-comment block immediately above it."""
        allows = self.allows.get(rel, {})
        if rule in allows.get(lineno, set()):
            return True
        lines = self.file_lines.get(rel, [])
        probe = lineno - 1
        while probe >= 1 and lines[probe - 1].lstrip().startswith("//"):
            if rule in allows.get(probe, set()):
                return True
            probe -= 1
        return False


# -- parsing ---------------------------------------------------------------

BASES_RE = re.compile(r"[:,]\s*(?:public|protected|private)?\s*"
                      r"(?:virtual\s+)?([A-Za-z_]\w*)")
DECL_SKIP_RE = re.compile(
    r"^\s*(?:using|typedef|friend|static|enum|return|if|for|while|"
    r"switch|case|default|break|continue|template|"
    r"class|struct|union|#|namespace|DR_DOMAIN_STAMP)\b")


def parse_decl_text(text: str, lineno: int, cls: str) -> Decl | None:
    flat = drphase.strip_templates(text)
    if "(" not in flat:
        return None
    m = METHOD_NAME_RE.search(flat)
    if not m:
        return None
    name = m.group(1).replace(" ", "")
    if name == cls or name.startswith("~") or name in CONTROL_KEYWORDS:
        return None
    decl = Decl(name)
    decl.virtual = bool(re.search(r"\bvirtual\b", flat))
    decl.pure = bool(re.search(r"=\s*0\s*;?\s*$", flat))
    decl.line = lineno
    head = flat[:m.start()]
    head = DECL_KEYWORDS_RE.sub(" ", head)
    decl.ret = head.strip()
    for tok in drphase.METHOD_PHASES:
        if re.search(r"\b%s\b" % tok, text):
            decl.phase = {
                "DR_COMPUTE_PHASE": "compute",
                "DR_ENDPOINT_PHASE": "compute",
                "DR_COMMIT_PHASE": "commit",
                "DR_PHASE_UNCHECKED": "unchecked",
                "DR_PHASE_READ": "read",
            }[tok]
            break
    return decl


def merge_decl(xc: XClass, decl: Decl, rel: str) -> Decl:
    cur = xc.decls.setdefault(decl.name, decl)
    if cur is not decl:
        cur.virtual = cur.virtual or decl.virtual
        cur.pure = cur.pure or decl.pure
        if cur.phase is None:
            cur.phase = decl.phase
        if not cur.ret:
            cur.ret = decl.ret
    if not cur.rel:
        cur.rel, cur.line = rel, decl.line
    return cur


def parse_file(code: list[str], rel: str, prog: Program) -> None:
    """Hierarchy + method-declaration + inline-body walk. Mirrors
    drphase.parse_classes' brace-depth machine, but records `virtual`
    declarations, base-class lists, and inline bodies."""
    depth = 0
    stack: list[tuple[XClass, int]] = []
    pending: XClass | None = None
    pending_head = ""
    decl_text = ""
    decl_line = 0
    body_of: Decl | None = None
    body_rel_lines: list[tuple[int, str]] = []
    body_depth = 0

    def flush_decl(with_body: bool) -> Decl | None:
        nonlocal decl_text
        text, lineno = decl_text.strip(), decl_line
        decl_text = ""
        if not text or not stack:
            return None
        xc, _ = stack[-1]
        if DECL_SKIP_RE.match(text) and "(" not in \
                drphase.strip_templates(text):
            return None
        d = parse_decl_text(text, lineno, xc.name)
        if d is None:
            return None
        return merge_decl(xc, d, rel)

    for lineno, line in enumerate(code, start=1):
        if line.lstrip().startswith("#"):
            continue
        if body_of is not None:
            pass  # characters handled below; line text captured there
        if pending is None and body_of is None:
            m = drphase.CLASS_HEAD_RE.search(line)
            if m and not re.search(r"\benum\s+$", line[:m.start() + 1]):
                name = m.group(2)
                pending = prog.classes.setdefault(name, XClass(name))
                pending_head = line[m.end():]
        elif pending is not None:
            pending_head += " " + line
        col = 0
        for ch in line:
            col += 1
            at_member = bool(stack) and stack[-1][1] == depth
            if body_of is not None:
                # Capturing an inline body: record text until the
                # brace depth returns to the method's opening level.
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth == body_depth:
                        body_of.bodies.append((rel, body_rel_lines))
                        body_of = None
                        body_rel_lines = []
                        continue
                if not body_rel_lines or body_rel_lines[-1][0] != lineno:
                    body_rel_lines.append((lineno, ""))
                body_rel_lines[-1] = (lineno,
                                      body_rel_lines[-1][1] + ch)
                continue
            if ch == "{":
                if pending is not None:
                    head = drphase.strip_templates(pending_head)
                    cut = head.find("{")
                    if cut >= 0:
                        head = head[:cut]
                    for bm in BASES_RE.finditer(":" + head if not
                                                head.lstrip().
                                                startswith(":") else
                                                head):
                        base = bm.group(1)
                        if base != pending.name:
                            if base not in pending.bases:
                                pending.bases.append(base)
                            prog.subclasses.setdefault(
                                base, set()).add(pending.name)
                    depth += 1
                    stack.append((pending, depth))
                    pending = None
                    pending_head = ""
                    decl_text = ""
                    continue
                if at_member and "(" in drphase.strip_templates(
                        decl_text):
                    d = flush_decl(with_body=True)
                    if d is not None:
                        body_of = d
                        body_depth = depth
                        body_rel_lines = [(lineno, "{")]
                        depth += 1
                        continue
                depth += 1
            elif ch == "}":
                if at_member:
                    decl_text = ""
                    stack.pop()
                depth = max(0, depth - 1)
            elif ch == ";":
                pending = None
                pending_head = ""
                if at_member:
                    decl_text += ";"
                    flush_decl(with_body=False)
            elif ch == ":" and at_member and decl_text.strip() in (
                    "public", "private", "protected"):
                decl_text = ""
            elif at_member:
                if not decl_text.strip() and not ch.isspace():
                    decl_line = lineno
                decl_text += ch
        decl_text += " "


def parse_concurrent_safe(prog: Program) -> None:
    for name, xc in prog.classes.items():
        d = xc.decls.get("concurrentSafe")
        if d is None or not d.bodies:
            continue
        text = " ".join(t for _, lines in d.bodies for _, t in lines)
        rel = d.bodies[0][0]
        if re.search(r"\breturn\s+true\b", text):
            xc.concurrent_safe = True
        elif re.search(r"\breturn\s+false\b", text):
            xc.concurrent_safe = False
        xc.concurrent_safe_line = (rel, d.bodies[0][1][0][0])


def inherited_concurrent_safe(prog: Program,
                              cls: str) -> tuple[bool | None,
                                                 tuple[str, int] | None]:
    xc = prog.classes.get(cls)
    if xc and xc.concurrent_safe is not None:
        return xc.concurrent_safe, xc.concurrent_safe_line
    for anc in prog.ancestors(cls):
        axc = prog.classes.get(anc)
        if axc and axc.concurrent_safe is not None:
            return axc.concurrent_safe, axc.concurrent_safe_line
    return None, None


def load_program(root: str, paths: list[str]) -> Program:
    prog = Program()
    for fpath, rel in drphase.list_sources(root, paths):
        with open(fpath, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
        code = drphase.strip_code(lines)
        prog.file_lines[rel] = lines
        prog.allows[rel] = {
            ln: set(ALLOW_RE.findall(raw))
            for ln, raw in enumerate(lines, start=1)
            if ALLOW_RE.search(raw)}
        drphase.parse_classes(code, rel, prog.models)
        parse_file(code, rel, prog)
        # Out-of-line bodies (Class::name at column 0 in .cpp files).
        for body in drphase.extract_cpp_methods(code, lines, rel):
            xc = prog.classes.setdefault(body.cls, XClass(body.cls))
            d = merge_decl(xc, Decl(body.name), rel)
            numbered = list(enumerate(body.lines, start=body.start))
            d.bodies.append((rel, numbered))
    parse_concurrent_safe(prog)
    return prog


# -- phase propagation -----------------------------------------------------


class Taint:
    def __init__(self, rule: str, rel: str, line: int, text: str,
                 chain: list[str]):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.text = text
        self.chain = chain

    def key(self):
        return (self.rel, self.line, self.rule)


def effective_phase(prog: Program, cls: str, name: str,
                    decl: Decl) -> str:
    phase = prog.declared_phase(cls, name)
    if phase:
        return phase
    text = " ".join(t for _, lines in decl.bodies for _, t in lines)
    if "DR_PHASE_UNCHECKED" in text:
        return "unchecked"
    if "DR_PHASE_ASSERT_COMMIT()" in text:
        return "commit"
    return "serial"


def body_edges(prog: Program, cls: str,
               body: tuple[str, list[tuple[int, str]]]):
    """Yield (rel, lineno, line, targets, via_member) call edges from a
    body. `targets` is a list of (class, decl-name); virtual receivers
    fan out across the family. `via_member` is the receiver member name
    (None for bare same-class calls and getter chains)."""
    rel, lines = body
    for lineno, line in lines:
        seen_spans = []
        for m in MEMBER_CALL_RE.finditer(line):
            base, callee = m.group(1), m.group(2)
            type_text = prog.member_type(cls, base)
            if not type_text:
                continue
            targets = []
            for tname in drphase.IDENT_RE.findall(
                    drphase.strip_templates(type_text)):
                if tname not in prog.classes:
                    continue
                for fam in prog.family(tname):
                    if prog.find_decl(fam, callee):
                        if (fam, callee) not in targets:
                            targets.append((fam, callee))
                if targets:
                    break
            if targets:
                seen_spans.append((m.start(), m.end()))
                yield rel, lineno, line, targets, base
        for m in GETTER_CALL_RE.finditer(line):
            getter, callee = m.group(1), m.group(2)
            found = prog.find_decl(cls, getter)
            if not found:
                continue
            _, gdecl = found
            targets = []
            for tname in drphase.IDENT_RE.findall(
                    drphase.strip_templates(gdecl.ret)):
                if tname not in prog.classes:
                    continue
                for fam in prog.family(tname):
                    if prog.find_decl(fam, callee):
                        if (fam, callee) not in targets:
                            targets.append((fam, callee))
                if targets:
                    break
            if targets:
                # Getter returns a reference into our own state: judge
                # the callee in the alias (checked) context.
                yield rel, lineno, line, targets, "%s()" % getter
        for m in BARE_CALL_RE.finditer(line):
            if any(s <= m.start() < e for s, e in seen_spans):
                continue
            callee = m.group(1)
            if callee in CONTROL_KEYWORDS or callee.startswith("DR_"):
                continue
            found = prog.find_decl(cls, callee)
            if not found:
                continue
            fcls, _ = found
            targets = []
            if prog.is_virtual(cls, callee):
                for fam in prog.family(fcls):
                    if prog.find_decl(fam, callee):
                        if (fam, callee) not in targets:
                            targets.append((fam, callee))
            else:
                targets.append((cls, callee))
            yield rel, lineno, line, targets, None


def edge_context(prog: Program, cls: str, via_member: str | None,
                 ctx: str) -> str:
    """Receiver-ownership context of a call edge. Reference/pointer
    members alias foreign state (checked); by-value members of an owned
    aggregate are owned; a by-value member declared DR_DOMAIN_OWNED or
    DR_SHARED_SPSC confers ownership even from a checked caller."""
    if via_member is None:
        return ctx
    if via_member.endswith("()"):
        return "checked"
    type_text = prog.member_type(cls, via_member) or ""
    if "&" in type_text or "*" in type_text:
        return "checked"
    if ctx == "owned":
        return "owned"
    if prog.member_class(cls, via_member) in ("domain", "spsc"):
        return "owned"
    return "checked"


def summarize(prog: Program, cls: str, name: str, ctx: str,
              memo: dict, in_progress: set) -> list[Taint]:
    """Taints of an *inferred* compute-phase method (transitive)."""
    key = (cls, name, ctx)
    if key in memo:
        return memo[key]
    if key in in_progress:
        return []
    found = prog.find_decl(cls, name)
    if not found:
        return []
    dcls, decl = found
    model = prog.models.get(cls) or prog.models.get(dcls)
    in_progress.add(key)
    taints: list[Taint] = []
    label = "%s::%s" % (cls, name)

    bodies = decl.bodies
    if not bodies and cls != dcls:
        # Inherited implementation: analyze the base's body as-if on
        # the derived class (member model resolution walks ancestors).
        bodies = prog.classes[dcls].decls[name].bodies

    for body in bodies:
        rel, lines = body
        if ctx == "checked" and model is not None:
            for lineno, line in lines:
                if prog.allowed(rel, lineno, "phase-escape"):
                    continue
                for member in model.members:
                    mcls = model.classification(member)
                    if mcls in ("domain", "spsc"):
                        continue
                    wrote = drphase.scan_writes(line, member) or \
                        drphase.scan_mutating_call(line, member)
                    if not wrote:
                        continue
                    type_text = model.member_types.get(member, "")
                    if drphase.TYPE_EXEMPT_RE.search(type_text):
                        continue
                    what = "serial" if mcls == "serial" else \
                        "unannotated"
                    taints.append(Taint(
                        "phase-escape", rel, lineno,
                        "%s writes %s member `%s`: %s"
                        % (label, what, member, line.strip()),
                        [label]))
        taints.extend(edge_taints(prog, cls, body, ctx, label,
                                  memo, in_progress))
    in_progress.discard(key)
    memo[key] = taints
    return taints


def edge_taints(prog: Program, cls: str, body, ctx: str, label: str,
                memo: dict, in_progress: set) -> list[Taint]:
    taints: list[Taint] = []
    for rel, lineno, line, targets, via in body_edges(prog, cls, body):
        for tcls, tname in targets:
            tfound = prog.find_decl(tcls, tname)
            if not tfound:
                continue
            tdcls, tdecl = tfound
            phase = effective_phase(prog, tcls, tname, tdecl)
            if phase in ("compute", "read", "unchecked"):
                continue
            if prog.allowed(rel, lineno, "phase-escape"):
                continue
            if phase == "commit":
                taints.append(Taint(
                    "phase-escape", rel, lineno,
                    "%s calls commit-phase %s::%s: %s"
                    % (label, tcls, tname, line.strip()), [label]))
                continue
            # Unannotated callee: virtual with no analyzable body is
            # unclassifiable; otherwise recurse as inferred compute.
            has_body = bool(tdecl.bodies) or (
                tcls != tdcls and
                bool(prog.classes[tdcls].decls[tname].bodies))
            if not has_body:
                if tdecl.pure:
                    # A pure virtual is never invoked itself — the
                    # family fan-out judges each concrete overrider.
                    continue
                if prog.is_virtual(tcls, tname):
                    if prog.allowed(rel, lineno,
                                    "virtual-dispatch-unclassified"):
                        continue
                    taints.append(Taint(
                        "virtual-dispatch-unclassified", rel, lineno,
                        "%s virtual call to %s::%s has no declared "
                        "phase and no analyzable body: %s"
                        % (label, tcls, tname, line.strip()), [label]))
                continue
            sub_ctx = edge_context(prog, cls, via, ctx)
            for t in summarize(prog, tcls, tname, sub_ctx, memo,
                               in_progress):
                taints.append(Taint(t.rule, t.rel, t.line, t.text,
                                    [label] + t.chain))
    return taints


def reachability_findings(prog: Program) -> list[drphase.Finding]:
    """Seed at every declared compute/endpoint body, chase edges into
    unannotated methods, and report each surviving taint once."""
    memo: dict = {}
    findings: list[drphase.Finding] = []
    seen: set = set()
    for cname in sorted(prog.classes):
        xc = prog.classes[cname]
        for mname in sorted(xc.decls):
            decl = xc.decls[mname]
            if not decl.bodies:
                continue
            if effective_phase(prog, cname, mname, decl) != "compute":
                continue
            label = "%s::%s" % (cname, mname)
            for body in decl.bodies:
                for t in edge_taints(prog, cname, body, "checked",
                                     label, memo, set()):
                    if t.key() in seen:
                        continue
                    seen.add(t.key())
                    findings.append(drphase.Finding(
                        t.rel, t.line, t.rule,
                        "%s [via %s]" % (t.text, " -> ".join(t.chain))))
    return findings


# -- confinement verdict ---------------------------------------------------


CAST_RE = re.compile(r"\bstatic_cast\s*\(\s*")


def normalize_index(expr: str) -> str:
    expr = drphase.strip_templates(expr)
    expr = CAST_RE.sub("", expr)
    return re.sub(r"[\s()]", "", expr)


def first_subscript(line: str, member: str) -> str | None:
    m = re.search(r"(?<![\w.>])%s\s*\[" % re.escape(member), line)
    if m is None:
        return None
    i = m.end()
    bal = 1
    start = i
    while i < len(line) and bal:
        if line[i] == "[":
            bal += 1
        elif line[i] == "]":
            bal -= 1
        i += 1
    return line[start:i - 1]


def deep_mutating_call(line: str, member: str) -> bool:
    """drphase.scan_mutating_call only sees `member.fn(` one level
    deep; staged banks mutate through two (`perCore_[core].claims
    .push_back(...)`), so the confinement walk needs the full chain."""
    for m in re.finditer(
            r"(?<![\w.>])%s\b\s*(?:\[[^\]]*\]\s*)?"
            r"(?:\.[A-Za-z_]\w*)*\.\s*([A-Za-z_]\w*)\s*\("
            % re.escape(member), line):
        if m.group(1) in drphase.MUTATING_CALLS:
            return True
    return False


def is_organizer_member(prog: Program, cls: str, member: str) -> bool:
    """Whether a member's declared type is an L1Organizer (a nested
    organization): calls on it are delegation, not state mutation."""
    type_text = prog.member_type(cls, member) or ""
    for tname in drphase.IDENT_RE.findall(
            drphase.strip_templates(type_text)):
        if tname == "L1Organizer" or \
                "L1Organizer" in prog.ancestors(tname):
            return True
    return False


class Verdict:
    def __init__(self, cls: str):
        self.cls = cls
        self.confined = True
        self.reasons: list[str] = []
        self.delegates: list[str] = []

    def fail(self, reason: str) -> None:
        self.confined = False
        self.reasons.append(reason)


def confine_class(prog: Program, cls: str, memo: dict) -> Verdict:
    if cls in memo:
        return memo[cls]
    verdict = Verdict(cls)
    memo[cls] = verdict  # coinductive: self-delegation assumes confined
    model = prog.models.get(cls)
    xc = prog.classes.get(cls)
    if xc is None:
        return verdict

    visited: set[str] = set()
    work = [m for m in ENTRY_METHODS if m in xc.decls]
    while work:
        mname = work.pop()
        if mname in visited:
            continue
        visited.add(mname)
        decl = xc.decls.get(mname)
        if decl is None or not decl.bodies:
            continue
        for body in decl.bodies:
            rel, lines = body
            for lineno, line in lines:
                # Member mutations must be banked by the calling core.
                if model is not None:
                    for member in model.members:
                        wrote = drphase.scan_writes(line, member) or \
                            drphase.scan_mutating_call(line, member) \
                            or deep_mutating_call(line, member)
                        if not wrote:
                            continue
                        if is_organizer_member(prog, cls, member):
                            continue  # delegation, judged by verdict
                        sub = first_subscript(line, member)
                        if sub is None:
                            verdict.fail(
                                "%s mutates `%s` without a per-core "
                                "index (%s:%d)"
                                % (mname, member, rel, lineno))
                        elif normalize_index(sub) != "core":
                            verdict.fail(
                                "%s mutates `%s` indexed by `%s`, "
                                "not the calling core (%s:%d)"
                                % (mname, member, sub.strip(), rel,
                                   lineno))
            # Same-class helpers join the entry set; delegated calls
            # into other L1 organizations require their verdicts.
            for erel, elineno, eline, targets, via in \
                    body_edges(prog, cls, body):
                for tcls, tname in targets:
                    if tcls == cls:
                        if via is None and tname not in visited:
                            work.append(tname)
                        continue
                    if "L1Organizer" in ([tcls] +
                                         prog.ancestors(tcls)):
                        if tcls not in verdict.delegates:
                            verdict.delegates.append(tcls)
                        sub = confine_class(prog, tcls, memo)
                        if not sub.confined:
                            verdict.fail(
                                "delegates to unconfined %s (%s:%d)"
                                % (tcls, erel, elineno))
    return verdict


def confinement_findings(prog: Program,
                         verdicts: dict[str, Verdict]
                         ) -> list[drphase.Finding]:
    findings = []
    memo: dict = {}
    for cls in sorted(prog.family("L1Organizer")):
        if cls == "L1Organizer":
            continue  # abstract interface: no verdict to contradict
        verdicts[cls] = confine_class(prog, cls, memo)
        declared, where = inherited_concurrent_safe(prog, cls)
        if declared is None or where is None:
            continue
        rel, line = where
        own = prog.classes[cls].concurrent_safe
        if own is None:
            # Inherited default: point at the class head instead.
            xc = prog.classes[cls]
            any_decl = next(iter(xc.decls.values()), None)
            if any_decl is not None and any_decl.rel:
                rel, line = any_decl.rel, any_decl.line
        v = verdicts[cls]
        if declared and not v.confined:
            if not prog.allowed(rel, line, "confinement-mismatch"):
                findings.append(drphase.Finding(
                    rel, line, "confinement-mismatch",
                    "%s declares concurrentSafe() == true but its "
                    "entry paths are not core-confined: %s"
                    % (cls, "; ".join(v.reasons))))
        elif not declared and v.confined:
            if not prog.allowed(rel, line, "confinement-mismatch"):
                findings.append(drphase.Finding(
                    rel, line, "confinement-mismatch",
                    "%s declares concurrentSafe() == false but every "
                    "entry-path mutation is core-confined (stale "
                    "serial fallback?)" % cls))
    return findings


def print_verdict_table(verdicts: dict[str, Verdict],
                        prog: Program) -> None:
    print("confinement verdicts (L1Organizer implementations):")
    print("  %-12s %-10s %-15s %s"
          % ("class", "verdict", "concurrentSafe", "delegates"))
    for cls in sorted(verdicts):
        v = verdicts[cls]
        declared, _ = inherited_concurrent_safe(prog, cls)
        print("  %-12s %-10s %-15s %s"
              % (cls, "confined" if v.confined else "UNCONFINED",
                 {True: "true", False: "false", None: "?"}[declared],
                 ", ".join(v.delegates) or "-"))
        for reason in v.reasons:
            print("    - %s" % reason)


# -- AST augment (optional, degrades gracefully) ---------------------------


def ast_augment(root: str, paths: list[str], compile_commands: str,
                prog: Program) -> bool:
    """Alias/overload-accurate hierarchy via libclang when the python
    bindings are importable: adds base->derived edges the token pass
    missed (e.g. bases hidden behind macros or typedefs). Degrades
    gracefully — returns False when the bindings are unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        print("drreach: note: libclang bindings unavailable; "
              "token-level hierarchy only")
        return False
    try:
        db = cindex.CompilationDatabase.fromDirectory(
            os.path.dirname(os.path.abspath(compile_commands)))
    except cindex.CompilationDatabaseError:
        print("drreach: note: cannot load %s" % compile_commands)
        return False
    index = cindex.Index.create()
    seen = 0
    for fpath, rel in drphase.list_sources(root, paths):
        if not fpath.endswith((".cpp", ".cc")):
            continue
        cmds = db.getCompileCommands(fpath)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:]
                if a not in (fpath, "-c", "-o")][:-1]
        try:
            tu = index.parse(fpath, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind != cindex.CursorKind.CXX_BASE_SPECIFIER:
                continue
            derived = cur.semantic_parent.spelling
            base = cur.type.spelling.split("<")[0].split("::")[-1]
            if derived in prog.classes and base in prog.classes:
                xc = prog.classes[derived]
                if base not in xc.bases:
                    xc.bases.append(base)
                    prog.subclasses.setdefault(base,
                                               set()).add(derived)
                    seen += 1
    if seen:
        print("drreach: AST augment added %d hierarchy edge(s)" % seen)
    return True


# -- driver ----------------------------------------------------------------


def scan(root: str, paths: list[str],
         compile_commands: str | None = None,
         verdicts: dict[str, Verdict] | None = None
         ) -> list[drphase.Finding]:
    prog = load_program(root, paths)
    if compile_commands:
        ast_augment(root, paths, compile_commands, prog)
    findings = reachability_findings(prog)
    if verdicts is None:
        verdicts = {}
    findings.extend(confinement_findings(prog, verdicts))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    scan.last_prog = prog  # for --all's verdict table
    scan.last_verdicts = verdicts
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="drreach", add_help=True)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the "
                             "repository root (default: src)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of "
                             "this script)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: "
                             "tools/drreach_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current counts")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang "
                             "hierarchy augment (degrades gracefully)")
    parser.add_argument("--all", action="store_true",
                        help="also print the per-class confinement "
                             "verdict table")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-30s %s" % (rule, RULES[rule]))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src"]
    baseline_path = args.baseline or os.path.join(
        root, "tools", "drreach_baseline.json")

    verdicts: dict[str, Verdict] = {}
    findings = scan(root, paths, args.compile_commands, verdicts)
    counts = drphase.counts_of(findings)

    if args.all:
        print_verdict_table(verdicts, scan.last_prog)

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(counts, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("drreach: baseline updated (%d findings in %d buckets)"
              % (len(findings), len(counts)))
        return 0

    baseline: dict[str, int] = {}
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)

    failed = False
    for key in sorted(counts):
        extra = counts[key] - baseline.get(key, 0)
        if extra <= 0:
            continue
        failed = True
        path, rule = key.rsplit(":", 1)
        print("drreach: %d new finding(s) of [%s] in %s:"
              % (extra, rule, path))
        for f in findings:
            if f.path == path and f.rule == rule:
                print("  " + str(f))

    if failed:
        print("drreach: FAIL (%d findings, baseline allows %d)"
              % (len(findings), sum(baseline.values())))
        return 1
    print("drreach: clean (%d findings, all within baseline)"
          % len(findings))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
